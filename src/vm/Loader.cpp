//===- vm/Loader.cpp ------------------------------------------*- C++ -*-===//

#include "vm/Loader.h"

#include "support/FaultInjector.h"
#include "support/Format.h"

#include <cstring>
#include <map>

using namespace e9;
using namespace e9::vm;

Result<MappingStats> vm::applyMappings(Vm &V, const elf::Image &Img) {
  MappingStats Stats;
  // Apply the trampoline mapping table with shared physical pages: one
  // physical page per (block, page-offset), reused across mappings.
  std::map<std::pair<uint32_t, uint64_t>, PhysPageRef> SharedPages;
  for (const elf::Mapping &M : Img.Mappings) {
    if (E9_FAULT_POINT("vm.load.mapping"))
      return Result<MappingStats>::error(format(
          "injected fault: vm.load.mapping (applying the mapping at %s "
          "failed)",
          hex(M.VAddr).c_str()));
    if ((M.VAddr & PageMask) != 0 || (M.Offset & PageMask) != 0)
      return Result<MappingStats>::error(
          format("mapping at %s is not page aligned", hex(M.VAddr).c_str()));
    if (M.BlockIndex >= Img.Blocks.size())
      return Result<MappingStats>::error("mapping references missing block");
    if (M.VAddr + M.Size < M.VAddr || M.Size > (1ull << 42))
      return Result<MappingStats>::error("mapping size out of range");
    const elf::PhysBlock &B = Img.Blocks[M.BlockIndex];
    uint64_t Pages = (M.Size + PageSize - 1) / PageSize;
    for (uint64_t P = 0; P != Pages; ++P) {
      uint64_t Off = M.Offset + P * PageSize;
      // Coarse-granularity blocks (M > 1) may straddle regions that are
      // already mapped (segments, guard zones). Pages carrying no
      // trampoline bytes are simply skipped (MAP_FIXED_NOREPLACE style);
      // losing *non-zero* bytes would corrupt the program and is an error.
      if (V.Mem.isMapped(M.VAddr + P * PageSize)) {
        bool AllZero = true;
        for (uint64_t I = Off; I < Off + PageSize && I < B.Bytes.size(); ++I)
          if (B.Bytes[I] != 0) {
            AllZero = false;
            break;
          }
        if (AllZero)
          continue;
        return Result<MappingStats>::error(
            format("mapping block %u collides with mapped page %s",
                   M.BlockIndex, hex(M.VAddr + P * PageSize).c_str()));
      }
      auto Key = std::make_pair(M.BlockIndex, Off);
      auto It = SharedPages.find(Key);
      if (It == SharedPages.end()) {
        PhysPageRef Page = allocPhysPage();
        if (Off < B.Bytes.size()) {
          size_t N = std::min<size_t>(PageSize, B.Bytes.size() - Off);
          std::memcpy(Page->data(), B.Bytes.data() + Off, N);
        }
        It = SharedPages.emplace(Key, std::move(Page)).first;
      }
      if (Status St = V.Mem.mapPage(M.VAddr + P * PageSize, It->second,
                                    static_cast<uint8_t>(M.Flags));
          !St)
        return Result<MappingStats>::error(
            format("mapping block %u at %s failed: %s", M.BlockIndex,
                   hex(M.VAddr + P * PageSize).c_str(), St.reason().c_str()));
    }
    ++Stats.MappingCount;
  }
  Stats.SharedPhysPages = SharedPages.size();
  return Stats;
}

Result<LoadStats> vm::load(Vm &V, const elf::Image &Img,
                           const LoadOptions &Opts) {
  LoadStats Stats;

  for (const elf::Segment &S : Img.Segments) {
    if (Status St = V.Mem.mapBytes(S.VAddr, S.Bytes, S.MemSize, S.Flags); !St)
      return Result<LoadStats>::error(
          format("loading segment %s at %s failed: %s", S.Name.c_str(),
                 hex(S.VAddr).c_str(), St.reason().c_str()));
  }

  auto MS = applyMappings(V, Img);
  if (!MS.isOk())
    return Result<LoadStats>::error(MS.reason());
  Stats.MappingCount = MS->MappingCount;
  Stats.SharedPhysPages = MS->SharedPhysPages;

  // Stack + exit sentinel (skipped for secondary images).
  if (Opts.SetupStack) {
    uint64_t StackBase = Opts.StackTop - Opts.StackSize;
    if (Status St = V.Mem.mapZero(StackBase, Opts.StackSize, PermR | PermW);
        !St)
      return Result<LoadStats>::error(St.reason());
    V.Core.rsp() = Opts.StackTop - 64;
    if (Status St = V.push64(ExitAddress); !St)
      return Result<LoadStats>::error(St.reason());
    V.Core.Rip = Img.Entry;
  }

  Stats.TotalPages = V.Mem.mappedPageCount();
  return Stats;
}
