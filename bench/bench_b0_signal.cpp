//===- bench/bench_b0_signal.cpp - Experiment E9 ---------------*- C++ -*-===//
//
// Reproduces the §2.1 baseline comparison: the B0 int3/signal-handler
// methodology versus the jump-based tactic suite, on one representative
// workload per application. Paper shape: B0 is orders of magnitude slower
// (each patched execution pays a kernel round trip); the tactic suite
// costs only a couple of extra jumps.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace e9::bench;
using namespace e9::workload;

int main() {
  std::printf("E9: B0 signal-handler baseline vs jump tactics\n");
  std::printf("Paper shape: B0 Time%% orders of magnitude above the "
              "tactic suite.\n\n");
  std::printf("%-12s %6s %14s %14s %10s\n", "binary", "app", "tactics%",
              "B0%", "B0/tactics");
  std::printf("------------------------------------------------------------\n");

  auto Suite = specSuite();
  for (size_t Idx : {1u, 6u, 17u}) { // bzip2, milc, hmmer analogs
    const SuiteEntry &E = Suite[Idx];
    for (App A : {App::Jumps, App::HeapWrites}) {
      EvalOptions Fast;
      AppResult RF = evalEntry(E, A, Fast);
      EvalOptions Slow;
      Slow.ForceB0 = true;
      AppResult RS = evalEntry(E, A, Slow);
      std::printf("%-12s %6s %14.1f %14.1f %9.1fx\n", E.Config.Name.c_str(),
                  A == App::Jumps ? "A1" : "A2", RF.TimePct, RS.TimePct,
                  RF.TimePct > 0 ? RS.TimePct / RF.TimePct : 0.0);
    }
  }
  return 0;
}
