//===- support/FaultInjector.cpp ------------------------------*- C++ -*-===//

#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace e9;

bool e9::FaultInjectionArmed = false;

namespace {

/// The site registry. Every E9_FAULT_POINT in the tree must name one of
/// these; the fault-injection sweep test iterates the list.
const char *const SiteRegistry[] = {
    "elf.read.ehdr",           // elf::read: ELF header parse
    "elf.read.phdr",           // elf::read: program header parse
    "elf.read.note",           // elf::read: E9REPRO mapping-note parse
    "elf.write.file",          // elf::writeFile: simulated I/O error
    "frontend.disasm.decode",  // frontend::rewrite: disassembly failure
    "core.alloc.allocate",     // core::Allocator: address-space exhaustion
    "core.group.merge",        // core::groupPages: grouping merge failure
    "core.group.corrupt-block",   // silent corruption: trampoline block byte
    "core.group.corrupt-mapping", // silent corruption: mapping-table entry
    "core.patch.corrupt-site",    // silent corruption: patched-site byte
    "vm.load.mapping",         // vm::load: mapping application failure
};

uint64_t mix64(uint64_t X) {
  // splitmix64 finalizer.
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t hashName(const char *S) {
  uint64_t H = 1469598103934665603ULL;
  for (; *S; ++S) {
    H ^= static_cast<uint8_t>(*S);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

FaultInjector &FaultInjector::instance() {
  static FaultInjector I;
  return I;
}

const std::vector<std::string> &FaultInjector::sites() {
  static const std::vector<std::string> Sites(std::begin(SiteRegistry),
                                              std::end(SiteRegistry));
  return Sites;
}

bool FaultInjector::isKnownSite(const std::string &Site) {
  const auto &S = sites();
  return std::find(S.begin(), S.end(), Site) != S.end();
}

void FaultInjector::arm(const std::string &Site, uint64_t Skip) {
  assert(isKnownSite(Site) && "arming an unregistered fault site");
  disarm();
  ArmedSite = Site;
  SkipHits = Skip;
  FaultInjectionArmed = true;
}

void FaultInjector::armRandom(uint64_t S, unsigned P) {
  disarm();
  Random = true;
  Seed = S;
  Percent = std::min(P, 100u);
  FaultInjectionArmed = true;
}

void FaultInjector::disarm() {
  ArmedSite.clear();
  SkipHits = 0;
  Random = false;
  Seed = 0;
  Percent = 0;
  Hits = 0;
  Fired = 0;
  PerSiteHits.clear();
  FaultInjectionArmed = false;
}

bool FaultInjector::shouldFail(const char *Site) {
  assert(isKnownSite(Site) && "hit on an unregistered fault site");
  if (Random) {
    ++Hits;
    auto It = std::find_if(PerSiteHits.begin(), PerSiteHits.end(),
                           [&](const auto &P) { return P.first == Site; });
    if (It == PerSiteHits.end())
      It = PerSiteHits.emplace(PerSiteHits.end(), Site, 0);
    uint64_t Ordinal = It->second++;
    uint64_t H = mix64(Seed ^ hashName(Site) ^ mix64(Ordinal));
    if (H % 100 < Percent) {
      ++Fired;
      return true;
    }
    return false;
  }
  if (ArmedSite != Site)
    return false;
  uint64_t Ordinal = Hits++;
  if (Ordinal < SkipHits)
    return false;
  ++Fired;
  return true;
}
