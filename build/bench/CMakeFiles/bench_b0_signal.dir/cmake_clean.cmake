file(REMOVE_RECURSE
  "CMakeFiles/bench_b0_signal.dir/bench_b0_signal.cpp.o"
  "CMakeFiles/bench_b0_signal.dir/bench_b0_signal.cpp.o.d"
  "bench_b0_signal"
  "bench_b0_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b0_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
