//===- workload/Suite.h - Named benchmark suite ----------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The named workload suite mirroring the paper's evaluation inputs
/// (Table 1 rows and the Figure 4 Dromaeo DOM kernels). Each entry is a
/// deterministic generator configuration whose *characteristics* (size
/// class, instruction mix, PIE-ness, .bss pressure) match the paper's
/// binary, per the substitution rules in DESIGN.md §2.1. Paper binaries
/// are not byte-identical — tactic percentages are a function of these
/// characteristics, which is what the reproduction preserves.
///
//===----------------------------------------------------------------------===//

#ifndef E9_WORKLOAD_SUITE_H
#define E9_WORKLOAD_SUITE_H

#include "workload/Gen.h"

#include <string>
#include <vector>

namespace e9 {
namespace workload {

struct SuiteEntry {
  WorkloadConfig Config;
  /// Shared objects load high (PIE-style) but their negative-offset range
  /// is occupied by dynamic-linker neighbors (paper §5.1): the rewriter
  /// must additionally reserve [base-2GiB, base).
  bool SharedObject = false;
  double PaperSizeMB = 0; ///< The original binary's size, for the table.
};

/// The 28 SPEC2006-analog rows of Table 1 (non-PIE, as in the paper).
std::vector<SuiteEntry> specSuite();

/// The system-binary rows (inkscape/gimp/vim/... plus libc/libc++).
std::vector<SuiteEntry> systemSuite();

/// The browser rows: Chrome (PIE executable), FireFox (small PIE
/// executable) and libxul.so (large shared object).
std::vector<SuiteEntry> browserSuite();

/// One Dromaeo-analog DOM kernel, in a Chrome-analog and a
/// FireFox-analog flavour (Figure 4).
struct DomKernel {
  std::string Name;
  WorkloadConfig Chrome;
  WorkloadConfig Firefox;
};
std::vector<DomKernel> domKernels();

} // namespace workload
} // namespace e9

#endif // E9_WORKLOAD_SUITE_H
