//===- x86/Register.h - x86_64 general purpose registers ------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The x86_64 general-purpose register model shared by the decoder,
/// assembler and VM. The numeric values match hardware encodings.
///
//===----------------------------------------------------------------------===//

#ifndef E9_X86_REGISTER_H
#define E9_X86_REGISTER_H

#include <cstdint>

namespace e9 {
namespace x86 {

/// General purpose registers, numbered as the hardware encodes them
/// (low 3 bits in ModRM/SIB, bit 3 from the REX prefix).
enum class Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
  RIP = 16,   ///< Pseudo register for rip-relative addressing.
  None = 17,  ///< No register (e.g. absent SIB base/index).
};

/// Returns the hardware encoding (0-15) of \p R. Not valid for RIP/None.
inline uint8_t regEncoding(Reg R) {
  return static_cast<uint8_t>(R) & 0xf;
}

/// Returns true when \p R requires the REX extension bit (r8-r15).
inline bool regNeedsRexBit(Reg R) {
  return R >= Reg::R8 && R <= Reg::R15;
}

/// Returns a GP register from its 4-bit hardware encoding.
inline Reg regFromEncoding(uint8_t Enc) {
  return static_cast<Reg>(Enc & 0xf);
}

/// Returns the canonical 64-bit name ("rax", "r12", "rip", "<none>").
const char *regName(Reg R);

/// Condition codes as encoded in the low nibble of Jcc/SETcc/CMOVcc.
enum class Cond : uint8_t {
  O = 0x0,   ///< overflow
  NO = 0x1,  ///< not overflow
  B = 0x2,   ///< below (CF)
  AE = 0x3,  ///< above or equal (!CF)
  E = 0x4,   ///< equal (ZF)
  NE = 0x5,  ///< not equal (!ZF)
  BE = 0x6,  ///< below or equal (CF || ZF)
  A = 0x7,   ///< above (!CF && !ZF)
  S = 0x8,   ///< sign (SF)
  NS = 0x9,  ///< not sign (!SF)
  P = 0xa,   ///< parity (PF)
  NP = 0xb,  ///< not parity (!PF)
  L = 0xc,   ///< less (SF != OF)
  GE = 0xd,  ///< greater or equal (SF == OF)
  LE = 0xe,  ///< less or equal (ZF || SF != OF)
  G = 0xf,   ///< greater (!ZF && SF == OF)
};

/// Returns the mnemonic suffix for a condition ("e", "ne", ...).
const char *condName(Cond C);

} // namespace x86
} // namespace e9

#endif // E9_X86_REGISTER_H
