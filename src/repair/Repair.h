//===- repair/Repair.h - Self-verifying rewrites ---------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive repair loop: rewrite, execute original and rewritten
/// binaries in the VM, compare end states, and when they diverge isolate
/// the offending patch site(s) by delta-debugging (ddmin over the applied
/// site set, re-rewriting each candidate subset through the deterministic
/// pipeline) and retry each culprit under a strictly more conservative
/// tactic ceiling (demote T3 -> T2 -> ... -> B0) or revoke it outright.
/// Candidate runs rewind a copy-on-write VM snapshot of the loaded
/// original instead of reloading from scratch — the StochFuzz fork-server
/// trick, in-process. See DESIGN.md §12.
///
//===----------------------------------------------------------------------===//

#ifndef E9_REPAIR_REPAIR_H
#define E9_REPAIR_REPAIR_H

#include "elf/Image.h"
#include "frontend/Rewriter.h"
#include "obs/Metrics.h"
#include "support/Status.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace e9 {
namespace repair {

/// How a candidate run differed from the reference run.
enum class DivergenceKind : uint8_t {
  None,         ///< End states identical — verified equivalent.
  EndState,     ///< Register or data-memory end-state mismatch.
  GuestFault,   ///< The candidate faulted (decode/memory error, ud2).
  Trap,         ///< int3 at an address with no B0 side-table entry.
  Hang,         ///< Step budget exhausted while the reference finished.
  LoadFailure,  ///< Candidate image failed to delta-load.
  RewriteError, ///< Candidate subset failed to rewrite at all.
};
const char *divergenceKindName(DivergenceKind K);

struct Divergence {
  DivergenceKind Kind = DivergenceKind::None;
  std::string Detail;
  bool diverged() const { return Kind != DivergenceKind::None; }
};

/// The repair outcome for one isolated culprit site.
struct SiteRepair {
  uint64_t Addr = 0;
  bool Revoked = false; ///< Left unpatched (no safe tactic found in budget).
  /// Tactic in use when the site was isolated as a culprit.
  core::Tactic From = core::Tactic::Failed;
  /// Adopted ceiling after demotion (meaningful when !Revoked).
  core::TacticCeiling Ceiling = core::TacticCeiling::Full;
  uint64_t Round = 0; ///< Repair round (1-based) that caught the site.
};

struct RepairReport {
  bool Converged = false;
  uint64_t Rounds = 0;        ///< Global rounds executed.
  uint64_t CandidateRuns = 0; ///< VM executions of rewrite candidates.
  uint64_t Rewrites = 0;      ///< Pipeline invocations (incl. the final one).
  uint64_t SnapshotRestores = 0;
  uint64_t ColdLoads = 0;     ///< Full image loads (1 unless snapshots fail).
  uint64_t CowClonedPages = 0; ///< Pages cloned by CoW across all runs.
  std::vector<SiteRepair> Sites;
  Divergence Final; ///< Last observed divergence when !Converged.
};

struct RepairOutput {
  /// The final rewrite, produced with the caller's own options (trace,
  /// verification, jobs) plus the repaired ceilings/revocations.
  frontend::RewriteOutput Rewrite;
  RepairReport Report;
  /// repair.* counters, separate from the rewrite pipeline's metrics.
  obs::MetricsSnapshot Metrics;
};

/// Rewrites \p In patching \p PatchLocs, then verifies the result by
/// execution and repairs divergent sites per \p Opts.Repair. Returns an
/// error only for infrastructure failures (unrunnable original, final
/// rewrite failure); a repair loop that exhausts its budget returns Ok
/// with Report.Converged == false so the caller can decide.
Result<RepairOutput>
selfVerifyingRewrite(const elf::Image &In,
                     const std::vector<uint64_t> &PatchLocs,
                     const frontend::RewriteOptions &Opts);

/// Chaos harness: wraps \p Opts so the trampoline at each address in
/// \p Sites executes a stray 8-byte write into unmapped low memory before
/// the displaced instruction — a deterministic stand-in for a rewriter
/// bug that only execution can catch. Keyed on the site address, so the
/// sabotage survives ddmin subsetting.
frontend::RewriteOptions sabotage(frontend::RewriteOptions Opts,
                                  std::set<uint64_t> Sites);

/// Picks up to \p N sites from \p PatchLocs that actually execute when
/// \p Img runs (evenly spaced over the executed subset, deterministic).
/// Chaos injected at a never-executed site cannot diverge and would make
/// a convergence test vacuous.
Result<std::vector<uint64_t>>
executedSites(const elf::Image &Img, const std::vector<uint64_t> &PatchLocs,
              size_t N);

} // namespace repair
} // namespace e9

#endif // E9_REPAIR_REPAIR_H
