//===- bench/bench_table1_jumps.cpp - Experiment E1 ------------*- C++ -*-===//
//
// Reproduces Table 1, application A1 (instrument every jmp/jcc), over the
// SPEC2006-analog suite: per-binary patch-location counts, tactic coverage
// breakdown (Base/T1/T2/T3/Succ%), runtime overhead (Time%) and rewritten
// file size (Size%). Paper reference values (non-PIE SPEC): Base ~72.8%,
// overall Succ ~99.9%, Time ~+110.8%, Size ~+57.4%; the gamess/zeusmp
// analogs (huge .bss, limitation L1) fall below 100% coverage.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cstdio>

using namespace e9::bench;
using namespace e9::workload;

int main() {
  std::printf("E1: Table 1, A1 jump instrumentation (SPEC2006 analogs)\n");
  std::printf("Paper shape: Base%% dominant, T1 > T2, T3 closes the gap to "
              "~100%%;\n gamess/zeusmp analogs < 100%% Succ (L1); Time%% "
              "around 2-4x; Size%% > 100.\n");

  printTableHeader("A1: all jmp/jcc instructions", /*WithTime=*/true);
  std::vector<AppResult> Rows;
  for (const SuiteEntry &E : specSuite()) {
    AppResult R = evalEntry(E, App::Jumps);
    printTableRow(R, true);
    Rows.push_back(R);
  }
  printTableTotals(Rows, true);
  return 0;
}
