//===- api/Driver.h - Batch patch-request driver ----------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a JSONL patch-request stream (see api/Protocol.h): templates
/// are compiled once into the stream-wide cache, each `binary`..`emit`
/// span forms one independent rewrite job, and every job runs through the
/// regular frontend::rewrite pipeline (sharded parallel patcher, verifier,
/// metrics). Answers with JSONL response lines on the output stream:
///
///   {"type":"error","line":N,"msg":"..."}          protocol violation
///   {"type":"finding","job":N,"kind":...,...}      one verifier finding
///   {"type":"status","job":N,"ok":...,...}         one per emit
///
/// Fail-closed split: *protocol* violations (malformed JSON, schema
/// violations, unknown templates/options, messages out of job order) stop
/// the stream with an error response — a request that cannot be proven
/// well-formed must not reach the backend. *Job* failures (unreadable
/// input, rewrite/verifier errors, unwritable output) are reported in
/// that job's status response and the stream continues, so one bad job in
/// a server-mode batch does not kill its neighbours.
///
/// Determinism: a job's output binary is byte-identical to the equivalent
/// direct `e9tool rewrite` invocation, for every jobs value — the driver
/// adds no state of its own to the rewrite, it only translates requests
/// into the same RewriteOptions the CLI builds.
///
//===----------------------------------------------------------------------===//

#ifndef E9_API_DRIVER_H
#define E9_API_DRIVER_H

#include <cstddef>
#include <iosfwd>

namespace e9 {
namespace api {

struct DriverOptions {
  /// When nonzero, overrides the script's "jobs" option for every job
  /// (the `e9tool apply --jobs=N` knob). Output bytes do not depend on
  /// this value (see frontend/Shard.h).
  unsigned JobsOverride = 0;
};

struct DriverResult {
  size_t JobsOk = 0;
  size_t JobsFailed = 0;
  /// True when the stream stopped on a protocol violation (an error
  /// response was emitted and the remaining input was not processed).
  bool ProtocolError = false;

  bool ok() const { return !ProtocolError && JobsFailed == 0; }
  int exitCode() const { return ok() ? 0 : 1; }
};

/// Runs the request stream \p In to completion (or to the first protocol
/// violation), writing JSONL responses to \p Responses.
DriverResult runScript(std::istream &In, std::ostream &Responses,
                       const DriverOptions &Opts = DriverOptions());

} // namespace api
} // namespace e9

#endif // E9_API_DRIVER_H
