//===- obs/Trace.h - Structured tactic/shard/verify tracing ----*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability event layer. The pipeline emits one JSONL event per
/// tactic attempt, per final site result, per shard, per grouping pass,
/// per verifier finding and one trailing summary; a trace answers "which
/// tactic patched each site, and why did the others fail" — the per-site
/// diagnosability the paper's Tables 1-3 are built from.
///
/// **Zero cost when disabled.** Instrumented code holds a `Tracer`, a
/// one-pointer value type. Every emit method is an inline null check that
/// falls through to an out-of-line renderer only when a buffer is
/// attached; with tracing off the entire subsystem costs one predictable
/// branch per event site and allocates nothing. Tracing never feeds back
/// into any rewriting decision, so output bytes are identical either way.
///
/// **Deterministic flush.** Events are buffered per shard (each shard's
/// Patcher runs single-threaded over its own `TraceBuffer` — no locks, no
/// interleaving) and merged in the same descending-address shard order as
/// the result merge in Shard.cpp. The redo pass discards a clashing
/// shard's first-run buffer along with its result. Every event field is a
/// pure function of (input binary, options), so a trace is byte-identical
/// for any `--jobs` value. The one exception is span durations: "span"
/// events carry wall-clock milliseconds and are only emitted when
/// `TracePolicy::Timings` opts in.
///
/// Event schema (all addresses are "0x..." hex strings; DESIGN.md §10
/// documents the full field tables; `e9tool stats` validates them):
///
///   meta     version, sites
///   attempt  site, tactic, ok [, reason, tramp, pads, pun_bytes,
///            victim, rescue]
///   site     addr, tactic [, tramp, reason]
///   rescue   victim, via, tramp
///   shard    id, sites, lo, hi, window, redo
///   group    virtual_blocks, phys_blocks, phys_bytes, mappings
///   verify   kind, addr, msg
///   span     name, shard, ms            (only with Timings)
///   summary  sites, b1..b0, failed, evictions, rescued, tramp_bytes,
///            succ_pct
///   degraded failed [, budget]          (failed sites within budget)
///   repair_divergence  round, kind [, detail]
///   repair_site        site, action, round [, from, ceiling]
///   repair_summary     converged, rounds, candidate_runs, rewrites,
///                      demoted, revoked, snapshot_restores, cold_loads
///
//======---------------------------------------------------------------===//

#ifndef E9_OBS_TRACE_H
#define E9_OBS_TRACE_H

#include "obs/Profile.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace e9 {
namespace obs {

/// One completed phase span: a named wall-clock interval, optionally
/// attributed to a shard (Shard >= 0 nests under the "patch" phase).
struct SpanRecord {
  std::string Name;
  int Shard = -1; ///< -1 = pipeline-level.
  double Ms = 0;
};

/// Wall-clock attribution for a whole rewrite: the scoped-span replacement
/// for the old hand-threaded PhaseTimings struct. Spans appear in
/// completion order; per-shard patch spans ride alongside the
/// pipeline-level ones.
struct PhaseProfile {
  std::vector<SpanRecord> Spans;
  double TotalMs = 0;
  /// Hierarchical span tree + raw event log from the ScopedSpan profiler
  /// (see Profile.h); empty unless TracePolicy::Profile opted in.
  ProfileNode Tree;
  std::vector<SpanEvent> Events;

  void add(std::string Name, double Ms, int Shard = -1) {
    Spans.push_back(SpanRecord{std::move(Name), Shard, Ms});
  }
  /// Sum of the *pipeline-level* spans with this name. Per-shard spans
  /// (Shard >= 0) are excluded — the pipeline-level "patch" span already
  /// covers the parallel shard execution wall time, so including them
  /// would double-count.
  double ms(std::string_view Name) const;
};

/// An append-only buffer of rendered JSONL event lines. Single-writer by
/// construction: each shard owns one, the pipeline owns one, and merging
/// happens on the merge thread only.
class TraceBuffer {
public:
  void emit(std::string Line) { Lines.push_back(std::move(Line)); }
  /// Appends \p Other's lines (deterministic merge step).
  void splice(TraceBuffer &&Other);
  const std::vector<std::string> &lines() const { return Lines; }
  std::vector<std::string> take() { return std::move(Lines); }
  bool empty() const { return Lines.empty(); }

private:
  std::vector<std::string> Lines;
};

/// Everything one tactic attempt can report. Optional fields keep their
/// sentinel (-1 / 0-with-flag) to be omitted from the event.
struct AttemptEvent {
  uint64_t Site = 0;
  const char *Tactic = "";      ///< "direct", "B1", "B2", "T1"-"T3", "B0".
  bool Ok = false;
  const char *Reason = nullptr; ///< Deepest failure reason when !Ok.
  uint64_t Tramp = 0;           ///< Trampoline address when Ok.
  int Pads = -1;                ///< Jump pad count (direct tactics).
  int PunBytes = -1;            ///< rel32 bytes reused from pre-existing text.
  uint64_t Victim = 0;          ///< Evicted victim address (T2/T3).
  bool HasVictim = false;
  bool Rescue = false;          ///< Victim was a failed site, now rescued.
};

/// The pipeline's view of a TraceBuffer: a nullable handle whose emit
/// methods compile to a null check when tracing is disabled. Copy freely —
/// it is one pointer.
class Tracer {
public:
  Tracer() = default;
  explicit Tracer(TraceBuffer *Buf) : Buf(Buf) {}

  bool enabled() const { return Buf != nullptr; }
  TraceBuffer *buffer() const { return Buf; }

  void meta(size_t Sites) {
    if (Buf)
      metaImpl(Sites);
  }
  void attempt(const AttemptEvent &E) {
    if (Buf)
      attemptImpl(E);
  }
  void site(uint64_t Addr, const char *Tactic, uint64_t Tramp,
            const char *Reason) {
    if (Buf)
      siteImpl(Addr, Tactic, Tramp, Reason);
  }
  void rescue(uint64_t Victim, const char *Via, uint64_t Tramp) {
    if (Buf)
      rescueImpl(Victim, Via, Tramp);
  }
  void shard(size_t Id, size_t Sites, uint64_t Lo, uint64_t Hi,
             uint64_t Window, bool Redo) {
    if (Buf)
      shardImpl(Id, Sites, Lo, Hi, Window, Redo);
  }
  void group(size_t VirtualBlocks, size_t PhysBlocks, uint64_t PhysBytes,
             size_t Mappings) {
    if (Buf)
      groupImpl(VirtualBlocks, PhysBlocks, PhysBytes, Mappings);
  }
  void verifyFinding(const char *Kind, uint64_t Addr,
                     const std::string &Msg) {
    if (Buf)
      verifyFindingImpl(Kind, Addr, Msg);
  }
  void span(const char *Name, int Shard, double Ms) {
    if (Buf)
      spanImpl(Name, Shard, Ms);
  }
  /// Trailing summary; \p TacticCounts indexed like core::Tactic (7 wide).
  void summary(size_t Sites, const size_t TacticCounts[7], size_t Evictions,
               size_t Rescued, uint64_t TrampBytes, double SuccPct) {
    if (Buf)
      summaryImpl(Sites, TacticCounts, Evictions, Rescued, TrampBytes,
                  SuccPct);
  }
  /// The rewrite completed but \p Failed sites exceeded zero while staying
  /// within \p Budget (SIZE_MAX = unlimited, omitted from the event).
  void degraded(size_t Failed, size_t Budget) {
    if (Buf)
      degradedImpl(Failed, Budget);
  }
  /// Repair loop: one detected divergence (round-scoped).
  void repairDivergence(uint64_t Round, const char *Kind,
                        const std::string &Detail) {
    if (Buf)
      repairDivergenceImpl(Round, Kind, Detail);
  }
  /// Repair loop: one per-site action. \p Action is "demote" or "revoke";
  /// \p Ceiling names the new ceiling on demotion (nullptr on revoke).
  void repairSite(uint64_t Site, const char *Action, const char *From,
                  const char *Ceiling, uint64_t Round) {
    if (Buf)
      repairSiteImpl(Site, Action, From, Ceiling, Round);
  }
  /// Repair loop: trailing outcome summary.
  void repairSummary(bool Converged, uint64_t Rounds, uint64_t CandidateRuns,
                     uint64_t Rewrites, size_t Demoted, size_t Revoked,
                     uint64_t SnapshotRestores, uint64_t ColdLoads) {
    if (Buf)
      repairSummaryImpl(Converged, Rounds, CandidateRuns, Rewrites, Demoted,
                        Revoked, SnapshotRestores, ColdLoads);
  }

private:
  void metaImpl(size_t Sites);
  void attemptImpl(const AttemptEvent &E);
  void siteImpl(uint64_t Addr, const char *Tactic, uint64_t Tramp,
                const char *Reason);
  void rescueImpl(uint64_t Victim, const char *Via, uint64_t Tramp);
  void shardImpl(size_t Id, size_t Sites, uint64_t Lo, uint64_t Hi,
                 uint64_t Window, bool Redo);
  void groupImpl(size_t VirtualBlocks, size_t PhysBlocks, uint64_t PhysBytes,
                 size_t Mappings);
  void verifyFindingImpl(const char *Kind, uint64_t Addr,
                         const std::string &Msg);
  void spanImpl(const char *Name, int Shard, double Ms);
  void summaryImpl(size_t Sites, const size_t TacticCounts[7],
                   size_t Evictions, size_t Rescued, uint64_t TrampBytes,
                   double SuccPct);
  void degradedImpl(size_t Failed, size_t Budget);
  void repairDivergenceImpl(uint64_t Round, const char *Kind,
                            const std::string &Detail);
  void repairSiteImpl(uint64_t Site, const char *Action, const char *From,
                      const char *Ceiling, uint64_t Round);
  void repairSummaryImpl(bool Converged, uint64_t Rounds,
                         uint64_t CandidateRuns, uint64_t Rewrites,
                         size_t Demoted, size_t Revoked,
                         uint64_t SnapshotRestores, uint64_t ColdLoads);

  TraceBuffer *Buf = nullptr;
};

} // namespace obs
} // namespace e9

#endif // E9_OBS_TRACE_H
