//===- obs/Trace.cpp ------------------------------------------*- C++ -*-===//

#include "obs/Trace.h"

#include "obs/JsonWriter.h"

using namespace e9;
using namespace e9::obs;

double PhaseProfile::ms(std::string_view Name) const {
  double Total = 0;
  for (const SpanRecord &S : Spans)
    if (S.Shard < 0 && S.Name == Name)
      Total += S.Ms;
  return Total;
}

void TraceBuffer::splice(TraceBuffer &&Other) {
  if (Lines.empty()) {
    Lines = std::move(Other.Lines);
    return;
  }
  Lines.insert(Lines.end(), std::make_move_iterator(Other.Lines.begin()),
               std::make_move_iterator(Other.Lines.end()));
  Other.Lines.clear();
}

void Tracer::metaImpl(size_t Sites) {
  JsonWriter W;
  W.field("ev", "meta").field("version", 1).field("sites", uint64_t(Sites));
  Buf->emit(W.take());
}

void Tracer::attemptImpl(const AttemptEvent &E) {
  JsonWriter W;
  W.field("ev", "attempt").hex("site", E.Site).field("tactic", E.Tactic)
      .field("ok", E.Ok);
  if (!E.Ok && E.Reason)
    W.field("reason", E.Reason);
  if (E.Ok && E.Tramp != 0)
    W.hex("tramp", E.Tramp);
  if (E.Pads >= 0)
    W.field("pads", E.Pads);
  if (E.PunBytes >= 0)
    W.field("pun_bytes", E.PunBytes);
  if (E.HasVictim)
    W.hex("victim", E.Victim);
  if (E.Rescue)
    W.field("rescue", true);
  Buf->emit(W.take());
}

void Tracer::siteImpl(uint64_t Addr, const char *Tactic, uint64_t Tramp,
                      const char *Reason) {
  JsonWriter W;
  W.field("ev", "site").hex("addr", Addr).field("tactic", Tactic);
  if (Tramp != 0)
    W.hex("tramp", Tramp);
  if (Reason)
    W.field("reason", Reason);
  Buf->emit(W.take());
}

void Tracer::rescueImpl(uint64_t Victim, const char *Via, uint64_t Tramp) {
  JsonWriter W;
  W.field("ev", "rescue").hex("victim", Victim).field("via", Via).hex("tramp",
                                                                      Tramp);
  Buf->emit(W.take());
}

void Tracer::shardImpl(size_t Id, size_t Sites, uint64_t Lo, uint64_t Hi,
                       uint64_t Window, bool Redo) {
  JsonWriter W;
  W.field("ev", "shard")
      .field("id", uint64_t(Id))
      .field("sites", uint64_t(Sites))
      .hex("lo", Lo)
      .hex("hi", Hi)
      .hex("window", Window)
      .field("redo", Redo);
  Buf->emit(W.take());
}

void Tracer::groupImpl(size_t VirtualBlocks, size_t PhysBlocks,
                       uint64_t PhysBytes, size_t Mappings) {
  JsonWriter W;
  W.field("ev", "group")
      .field("virtual_blocks", uint64_t(VirtualBlocks))
      .field("phys_blocks", uint64_t(PhysBlocks))
      .field("phys_bytes", PhysBytes)
      .field("mappings", uint64_t(Mappings));
  Buf->emit(W.take());
}

void Tracer::verifyFindingImpl(const char *Kind, uint64_t Addr,
                               const std::string &Msg) {
  JsonWriter W;
  W.field("ev", "verify").field("kind", Kind).hex("addr", Addr).field("msg",
                                                                      Msg);
  Buf->emit(W.take());
}

void Tracer::spanImpl(const char *Name, int Shard, double Ms) {
  JsonWriter W;
  W.field("ev", "span").field("name", Name);
  if (Shard >= 0)
    W.field("shard", Shard);
  W.fixed("ms", Ms, 3);
  Buf->emit(W.take());
}

void Tracer::summaryImpl(size_t Sites, const size_t TacticCounts[7],
                         size_t Evictions, size_t Rescued, uint64_t TrampBytes,
                         double SuccPct) {
  // Keys mirror core::Tactic order: B1, B2, T1, T2, T3, B0, Failed.
  static const char *const Keys[7] = {"b1", "b2", "t1", "t2",
                                      "t3", "b0", "failed"};
  JsonWriter W;
  W.field("ev", "summary").field("sites", uint64_t(Sites));
  for (int I = 0; I != 7; ++I)
    W.field(Keys[I], uint64_t(TacticCounts[I]));
  W.field("evictions", uint64_t(Evictions))
      .field("rescued", uint64_t(Rescued))
      .field("tramp_bytes", TrampBytes)
      .fixed("succ_pct", SuccPct, 2);
  Buf->emit(W.take());
}

void Tracer::degradedImpl(size_t Failed, size_t Budget) {
  JsonWriter W;
  W.field("ev", "degraded").field("failed", uint64_t(Failed));
  if (Budget != SIZE_MAX)
    W.field("budget", uint64_t(Budget));
  Buf->emit(W.take());
}

void Tracer::repairDivergenceImpl(uint64_t Round, const char *Kind,
                                  const std::string &Detail) {
  JsonWriter W;
  W.field("ev", "repair_divergence").field("round", Round).field("kind", Kind);
  if (!Detail.empty())
    W.field("detail", Detail);
  Buf->emit(W.take());
}

void Tracer::repairSiteImpl(uint64_t Site, const char *Action,
                            const char *From, const char *Ceiling,
                            uint64_t Round) {
  JsonWriter W;
  W.field("ev", "repair_site").hex("site", Site).field("action", Action);
  if (From)
    W.field("from", From);
  if (Ceiling)
    W.field("ceiling", Ceiling);
  W.field("round", Round);
  Buf->emit(W.take());
}

void Tracer::repairSummaryImpl(bool Converged, uint64_t Rounds,
                               uint64_t CandidateRuns, uint64_t Rewrites,
                               size_t Demoted, size_t Revoked,
                               uint64_t SnapshotRestores, uint64_t ColdLoads) {
  JsonWriter W;
  W.field("ev", "repair_summary")
      .field("converged", Converged)
      .field("rounds", Rounds)
      .field("candidate_runs", CandidateRuns)
      .field("rewrites", Rewrites)
      .field("demoted", uint64_t(Demoted))
      .field("revoked", uint64_t(Revoked))
      .field("snapshot_restores", SnapshotRestores)
      .field("cold_loads", ColdLoads);
  Buf->emit(W.take());
}
