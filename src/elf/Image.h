//===- elf/Image.h - In-memory ELF image -----------------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory representation of an executable image: loadable segments,
/// plus (for rewritten binaries) appended physical trampoline blocks and the
/// virtual mapping table that the loader applies at startup.
///
/// Real E9Patch injects a small loader stub that mmap()s trampoline pages
/// before jumping to the original entry point. In this reproduction the
/// rewritten binary carries the same information as an explicit mapping
/// table (a custom ELF note) that the VM loader interprets; one physical
/// block may be mapped at many virtual addresses, which is exactly how
/// physical page grouping shares memory (see DESIGN.md §2.3).
///
//===----------------------------------------------------------------------===//

#ifndef E9_ELF_IMAGE_H
#define E9_ELF_IMAGE_H

#include "obs/Profile.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace e9 {
namespace elf {

/// ELF segment permission flags (PF_*).
inline constexpr uint32_t PF_X = 1;
inline constexpr uint32_t PF_W = 2;
inline constexpr uint32_t PF_R = 4;

/// A loadable segment (PT_LOAD). MemSize >= Bytes.size(); the excess is
/// zero-filled at load time (.bss style).
struct Segment {
  uint64_t VAddr = 0;
  std::vector<uint8_t> Bytes;
  uint64_t MemSize = 0;
  uint32_t Flags = PF_R;
  std::string Name; ///< Informational only ("text", "data", "bss").

  uint64_t fileSize() const { return Bytes.size(); }
  uint64_t endAddr() const { return VAddr + MemSize; }
  bool containsAddr(uint64_t A) const { return A >= VAddr && A < endAddr(); }
};

/// A physical block of trampoline/instrumentation bytes appended to the
/// rewritten binary. One block may back many virtual mappings.
struct PhysBlock {
  std::vector<uint8_t> Bytes;
};

/// One loader mapping: [VAddr, VAddr+Size) is backed by
/// Blocks[BlockIndex][Offset, Offset+Size).
struct Mapping {
  uint64_t VAddr = 0;
  uint32_t BlockIndex = 0;
  uint32_t Flags = PF_R | PF_X;
  uint64_t Offset = 0;
  uint64_t Size = 0;
};

/// An executable or shared-object image.
struct Image {
  uint64_t Entry = 0;
  bool Pie = false;
  std::vector<Segment> Segments;

  // Rewritten binaries only:
  std::vector<PhysBlock> Blocks;
  std::vector<Mapping> Mappings;
  /// B0 side table: original instruction bytes per int3-patched site
  /// (consumed by the trap handler at run time). Serialized in the
  /// mapping note so a rewritten binary is self-contained.
  std::map<uint64_t, std::vector<uint8_t>> B0Sites;

  /// Returns the segment containing \p Addr, or nullptr.
  Segment *findSegment(uint64_t Addr);
  const Segment *findSegment(uint64_t Addr) const;

  /// Returns the first executable segment (the ".text" analog), or nullptr.
  const Segment *textSegment() const;
  Segment *textSegment();

  /// Reads \p N bytes of *file-backed* segment content at \p Addr.
  /// Fails when the range leaves file-backed content.
  Status readBytes(uint64_t Addr, uint8_t *Out, size_t N) const;

  /// Overwrites file-backed segment content at \p Addr.
  Status writeBytes(uint64_t Addr, const uint8_t *In, size_t N);

  /// Total bytes the serialized file would hold, as written by write().
  /// (Convenience for size accounting; write() reports the exact value.)
  uint64_t segmentFileBytes() const;
};

/// Serializes \p Img to ELF64 bytes (stripped: program headers only, plus
/// the E9REPRO mapping note for rewritten binaries).
std::vector<uint8_t> write(const Image &Img);

/// Exact byte count write(\p Img) would produce, without serializing.
/// Plans the same layout (segment congruence padding, note, block
/// alignment) but allocates nothing — size accounting for large images.
/// \p Prof (optional) records the layout pass as an "elf.layout" span.
uint64_t writtenSize(const Image &Img, obs::Profiler Prof = {});

/// Parses ELF64 bytes produced by write() (or a compatible minimal ELF).
Result<Image> read(const std::vector<uint8_t> &Bytes);

/// Span overload: parses directly from borrowed memory (e.g. a read-only
/// mmap of the input file) without staging through a vector.
Result<Image> read(const uint8_t *Data, size_t Size);

/// File convenience wrappers. writeFile's optional profiler records the
/// layout and emission passes as "elf.layout" / "elf.emit" spans.
Status writeFile(const Image &Img, const std::string &Path,
                 obs::Profiler Prof = {});
Result<Image> readFile(const std::string &Path);

} // namespace elf
} // namespace e9

#endif // E9_ELF_IMAGE_H
