//===- tests/profile_test.cpp - hierarchical span profiler -----*- C++ -*-===//
//
// Covers the obs::Profile layer: collector nesting/aggregation semantics,
// the three export formats, the determinism contract (the span tree's
// structure is byte-identical across --jobs), the zero-cost guarantee
// (profiling on vs. off produces byte-identical binaries), unwind safety
// under fault-injection early exits, and the repair loop's grafted
// "repair" subtree.
//
//===----------------------------------------------------------------------===//

#include "frontend/Prescan.h"
#include "frontend/Rewriter.h"
#include "lowfat/LowFat.h"
#include "obs/Profile.h"
#include "repair/Repair.h"
#include "support/FaultInjector.h"
#include "workload/Gen.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

namespace {

const obs::ProfileNode *childNamed(const obs::ProfileNode &N,
                                   const char *Name) {
  for (const obs::ProfileNode &C : N.Children)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

size_t countNodes(const obs::ProfileNode &N) {
  size_t Total = 1;
  for (const obs::ProfileNode &C : N.Children)
    Total += countNodes(C);
  return Total;
}

RewriteOptions profiledOptions(unsigned Jobs) {
  RewriteOptions Opts;
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.withJobs(Jobs).withProfile(true);
  return Opts;
}

Workload smallWorkload() {
  WorkloadConfig C;
  C.Seed = 2026;
  C.NumFuncs = 24;
  return generateWorkload(C);
}

std::vector<uint64_t> jumpSites(const Workload &W) {
  return prescanSelect(W.Image, SelectorKind::Jumps);
}

} // namespace

//===----------------------------------------------------------------------===//
// Collector semantics
//===----------------------------------------------------------------------===//

TEST(ProfileCollectorTest, NestingAggregatesByNameAndOrder) {
  obs::ProfileCollector C;
  obs::Profiler P(&C);
  for (int I = 0; I != 3; ++I) {
    obs::ScopedSpan Outer(P, "outer");
    {
      obs::ScopedSpan A(P, "a");
      EXPECT_EQ(C.depth(), 2u);
    }
    obs::ScopedSpan B(P, "b");
  }
  EXPECT_EQ(C.depth(), 0u);
  obs::ProfileNode Root = C.takeTree(1.0);
  ASSERT_EQ(Root.Children.size(), 1u);
  const obs::ProfileNode &Outer = Root.Children[0];
  EXPECT_EQ(Outer.Name, "outer");
  EXPECT_EQ(Outer.Count, 3u);
  // Children keep first-visit order and aggregate per name.
  ASSERT_EQ(Outer.Children.size(), 2u);
  EXPECT_EQ(Outer.Children[0].Name, "a");
  EXPECT_EQ(Outer.Children[0].Count, 3u);
  EXPECT_EQ(Outer.Children[1].Name, "b");
  EXPECT_EQ(Outer.Children[1].Count, 3u);
  // Three outer spans, each with two inner spans -> 9 raw events.
  EXPECT_EQ(C.takeEvents().size(), 9u);
}

TEST(ProfileCollectorTest, DisabledProfilerIsANoOp) {
  obs::Profiler Off; // null collector
  EXPECT_FALSE(Off.enabled());
  // Must not crash or allocate anything observable.
  obs::ScopedSpan S1(Off, "phantom");
  obs::ScopedSpan S2(Off, "phantom2");
}

TEST(ProfileCollectorTest, GraftAdoptsSubtreeUnderOpenSpan) {
  obs::ProfileCollector Shard(/*Shard=*/3);
  {
    obs::Profiler P(&Shard);
    obs::ScopedSpan Work(P, "work");
  }
  obs::ProfileNode Sub = Shard.takeTree(5.0);

  obs::ProfileCollector Main;
  obs::Profiler P(&Main);
  {
    obs::ScopedSpan Patch(P, "patch");
    Main.graft("shard", 3, std::move(Sub), Shard.takeEvents(), 5.0);
  }
  obs::ProfileNode Root = Main.takeTree(10.0);
  const obs::ProfileNode *Patch = childNamed(Root, "patch");
  ASSERT_NE(Patch, nullptr);
  const obs::ProfileNode *Grafted = childNamed(*Patch, "shard");
  ASSERT_NE(Grafted, nullptr);
  EXPECT_EQ(Grafted->Shard, 3);
  EXPECT_EQ(Grafted->TotalMs, 5.0);
  ASSERT_EQ(Grafted->Children.size(), 1u);
  EXPECT_EQ(Grafted->Children[0].Name, "work");
  EXPECT_EQ(Grafted->Children[0].Shard, 3);
}

//===----------------------------------------------------------------------===//
// Export formats
//===----------------------------------------------------------------------===//

TEST(ProfileExportTest, JsonCollapsedAndChromeAgree) {
  obs::ProfileCollector C(/*Shard=*/1);
  obs::Profiler P(&C);
  {
    obs::ScopedSpan A(P, "alpha");
    obs::ScopedSpan B(P, "beta");
  }
  std::vector<obs::SpanEvent> Events = C.takeEvents();
  obs::ProfileNode Root = C.takeTree(2.0);
  Root.Name = "rewrite";

  std::string Json = obs::profileToJson(Root);
  EXPECT_NE(Json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(Json.find("\"shard\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"total_ms\":"), std::string::npos);
  // Structure-only rendering drops exactly the wall-clock fields.
  std::string Bare = obs::profileToJson(Root, /*IncludeTimes=*/false);
  EXPECT_EQ(Bare.find("_ms\":"), std::string::npos);
  EXPECT_NE(Bare.find("\"count\":"), std::string::npos);

  std::string Folded = obs::profileToCollapsed(Root);
  EXPECT_NE(Folded.find("rewrite[1];alpha[1];beta[1] "), std::string::npos);
  // One line per tree node.
  EXPECT_EQ(static_cast<size_t>(
                std::count(Folded.begin(), Folded.end(), '\n')),
            countNodes(Root));

  std::string Chrome = obs::profileToChromeTrace(Events);
  EXPECT_NE(Chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"name\":\"beta\""), std::string::npos);
  // Shard 1 renders as tid 2 (tid 0 is the orchestrator).
  EXPECT_NE(Chrome.find("\"tid\":2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Pipeline integration: determinism, zero cost, unwind, repair graft
//===----------------------------------------------------------------------===//

TEST(ProfilePipelineTest, TreeStructureIdenticalAcrossJobs) {
  Workload W = smallWorkload();
  std::vector<uint64_t> Locs = jumpSites(W);

  auto A = rewrite(W.Image, Locs, profiledOptions(1));
  ASSERT_TRUE(A.isOk()) << A.reason();
  std::string Ref = obs::profileToJson(A->Profile.Tree, false);
  EXPECT_NE(Ref.find("\"name\":\"patch\""), std::string::npos);
  EXPECT_NE(Ref.find("\"name\":\"shard\""), std::string::npos);
  EXPECT_NE(Ref.find("\"name\":\"tactic.direct\""), std::string::npos);

  for (unsigned Jobs : {2u, 4u, 8u}) {
    auto B = rewrite(W.Image, Locs, profiledOptions(Jobs));
    ASSERT_TRUE(B.isOk()) << B.reason();
    EXPECT_EQ(obs::profileToJson(B->Profile.Tree, false), Ref)
        << "profile tree diverged at jobs=" << Jobs;
  }
}

TEST(ProfilePipelineTest, ProfilingDoesNotPerturbOutputBytes) {
  Workload W = smallWorkload();
  std::vector<uint64_t> Locs = jumpSites(W);

  RewriteOptions Plain;
  Plain.ExtraReserved.push_back(lowfat::heapReservation());
  Plain.withJobs(4);
  auto Off = rewrite(W.Image, Locs, Plain);
  auto On = rewrite(W.Image, Locs, profiledOptions(4));
  ASSERT_TRUE(Off.isOk() && On.isOk());
  EXPECT_EQ(elf::write(Off->Rewritten), elf::write(On->Rewritten));
  // And the disabled path really is disabled: no tree, no events.
  EXPECT_TRUE(Off->Profile.Tree.Children.empty());
  EXPECT_TRUE(Off->Profile.Events.empty());
  EXPECT_FALSE(On->Profile.Tree.Children.empty());
  EXPECT_FALSE(On->Profile.Events.empty());
}

TEST(ProfilePipelineTest, EarlyErrorExitsUnwindCleanly) {
  // A mid-pipeline fault-injection failure returns through several open
  // ScopedSpans; the collector must unwind without tripping assertions
  // and the next rewrite in the same process must profile normally.
  Workload W = smallWorkload();
  std::vector<uint64_t> Locs = jumpSites(W);

  // Hard failure: disassembly faults abort the whole rewrite.
  FaultInjector::instance().arm("frontend.disasm.decode");
  auto Failed = rewrite(W.Image, Locs, profiledOptions(2));
  FaultInjector::instance().disarm();
  EXPECT_FALSE(Failed.isOk());

  // Soft failure: allocation faults fail individual sites; either outcome
  // must leave the span stack balanced.
  FaultInjector::instance().arm("core.alloc.allocate");
  rewrite(W.Image, Locs, profiledOptions(2));
  FaultInjector::instance().disarm();

  auto Ok = rewrite(W.Image, Locs, profiledOptions(2));
  ASSERT_TRUE(Ok.isOk());
  EXPECT_FALSE(Ok->Profile.Tree.Children.empty());
}

TEST(ProfilePipelineTest, RepairGraftsItsOwnSubtree) {
  WorkloadConfig C;
  C.Seed = 7;
  C.NumFuncs = 8;
  C.MainIters = 2;
  Workload W = generateWorkload(C);
  std::vector<uint64_t> Locs = jumpSites(W);

  RewriteOptions Opts = profiledOptions(1);
  Opts.Repair.Enabled = true;
  auto R = repair::selfVerifyingRewrite(W.Image, Locs, Opts);
  ASSERT_TRUE(R.isOk()) << R.reason();
  EXPECT_TRUE(R->Report.Converged);

  const obs::ProfileNode &Root = R->Rewrite.Profile.Tree;
  const obs::ProfileNode *Rep = childNamed(Root, "repair");
  ASSERT_NE(Rep, nullptr);
  EXPECT_NE(childNamed(*Rep, "reference_run"), nullptr);
  const obs::ProfileNode *Round = childNamed(*Rep, "round");
  ASSERT_NE(Round, nullptr);
  EXPECT_NE(childNamed(*Round, "rewrite"), nullptr);
  EXPECT_NE(childNamed(*Round, "candidate_run"), nullptr);
  // The rewrite phases still profile alongside the grafted subtree.
  EXPECT_NE(childNamed(Root, "patch"), nullptr);
}
