//===- api/Serve.cpp ------------------------------------------*- C++ -*-===//

#include "api/Serve.h"

#include "obs/JsonWriter.h"
#include "support/Format.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

using namespace e9;
using namespace e9::api;
using support::Fd;
using support::PollResult;

namespace {

int64_t nowMs() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
      .count();
}

/// Poll slice for the accept and read loops: short enough that stop
/// flags are observed promptly, long enough to stay off the CPU.
constexpr int SliceMs = 100;

} // namespace

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(Listener L, ServeOptions Opts)
    : L(std::move(L)), Opts(Opts) {
  int Pipe[2] = {-1, -1};
  if (::pipe2(Pipe, O_CLOEXEC | O_NONBLOCK) == 0) {
    WakeR = Fd(Pipe[0]);
    WakeW = Fd(Pipe[1]);
  }
}

Server::~Server() {
  requestShutdown();
  // run() owns the drain; if it never ran (construct-then-destroy),
  // there is nothing to join — Conns only grows inside run().
  while (Running.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  reapFinished(/*JoinAll=*/true);
}

void Server::requestShutdown() {
  Stopping.store(true, std::memory_order_release);
  if (WakeW.valid()) {
    char B = 's';
    // Best effort; the accept loop also polls with a timeout.
    [[maybe_unused]] ssize_t N = ::write(WakeW.get(), &B, 1);
  }
}

void Server::shutdown() {
  requestShutdown();
  while (!Finished.load(std::memory_order_acquire) &&
         Running.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void Server::reapFinished(bool JoinAll) {
  for (auto It = Conns.begin(); It != Conns.end();) {
    if (JoinAll || (*It)->Done.load(std::memory_order_acquire)) {
      if ((*It)->T.joinable())
        (*It)->T.join();
      It = Conns.erase(It);
    } else {
      ++It;
    }
  }
}

void Server::run() {
  Running.store(true, std::memory_order_release);
  while (!Stopping.load(std::memory_order_acquire)) {
    struct pollfd P[2];
    P[0].fd = L.fd();
    P[0].events = POLLIN;
    P[0].revents = 0;
    P[1].fd = WakeR.valid() ? WakeR.get() : -1;
    P[1].events = POLLIN;
    P[1].revents = 0;
    int N = ::poll(P, 2, SliceMs);
    if (N < 0 && errno != EINTR)
      break; // listener gone; nothing left to accept
    reapFinished(/*JoinAll=*/false);
    if (N <= 0 || (P[0].revents & POLLIN) == 0)
      continue;
    Fd Client = L.acceptOne();
    if (!Client)
      continue;
    if (Conns.size() >= Opts.MaxConnections) {
      // Typed rejection, then close: the client learns why instead of
      // seeing an unexplained RST, and no session state is built.
      Connection C(std::move(Client), Opts.WriteQueueLimit,
                   /*WriteTimeoutMs=*/1000);
      obs::JsonWriter W;
      W.field("type", "error")
          .field("kind", "capacity")
          .field("line", (uint64_t)0)
          .field("msg",
                 format("server at capacity (%zu concurrent sessions)",
                        Opts.MaxConnections));
      (void)C.writeLine(W.take());
      (void)C.flush();
      Registry.counter("serve.capacity_rejected").add();
      continue;
    }
    auto C = std::make_unique<Conn>();
    Conn *Raw = C.get();
    Registry.counter("serve.sessions_opened").add();
    C->T = std::thread([this, Raw](Fd Sock) {
      serveConnection(std::move(Sock), Raw);
    }, std::move(Client));
    Conns.push_back(std::move(C));
  }
  // Graceful shutdown: refuse new sessions first (close + unlink the
  // listener), then drain — connection threads observe Stopping and
  // finish within their grace period — and join everything.
  L.close();
  reapFinished(/*JoinAll=*/true);
  Finished.store(true, std::memory_order_release);
  Running.store(false, std::memory_order_release);
}

void Server::serveConnection(Fd Client, Conn *C) {
  Connection Io(std::move(Client), Opts.WriteQueueLimit,
                Opts.WriteTimeoutMs);
  // Response I/O failures (disconnects, undraining readers) mark the
  // session dead; the read loop below notices and tears down. The
  // session itself never learns — its sink cannot fail.
  Status IoError = Status::ok();
  Session S(
      [&Io, &IoError](std::string_view Line) {
        if (!IoError.isOk())
          return;
        if (Status St = Io.writeLine(Line); !St)
          IoError = St;
      },
      Opts.Session);

  size_t LineNo = 0;
  std::string Line;
  bool SessionOk = true;
  int64_t DrainDeadline = -1; // set on first sight of Stopping
  bool ReadCut = false;
  for (;;) {
    if (!IoError.isOk()) {
      SessionOk = false;
      break;
    }
    bool Stop = Stopping.load(std::memory_order_acquire);
    if (Stop && DrainDeadline < 0)
      DrainDeadline = nowMs() + Opts.DrainTimeoutMs;
    Connection::ReadResult R = Io.readLine(Line, SliceMs);
    if (R == Connection::ReadResult::Timeout) {
      if (!Stop)
        continue;
      if (!S.jobOpen())
        break; // idle at shutdown: drain complete for this session
      if (nowMs() >= DrainDeadline && !ReadCut) {
        // Grace expired mid-job: pull the read side. Already-buffered
        // messages still run; the missing remainder surfaces as EOF and
        // the unfinished job fails closed below.
        Io.shutdownRead();
        ReadCut = true;
      }
      continue;
    }
    if (R == Connection::ReadResult::Eof) {
      SessionOk = S.finish(LineNo + 1) && SessionOk;
      break;
    }
    if (R == Connection::ReadResult::Error) {
      SessionOk = false;
      break;
    }
    ++LineNo;
    std::string_view Trimmed(Line);
    while (!Trimmed.empty() &&
           (Trimmed.back() == '\r' || Trimmed.back() == ' '))
      Trimmed.remove_suffix(1);
    if (Trimmed.empty())
      continue;
    if (!S.feed(LineNo, Trimmed)) {
      SessionOk = false; // fatal protocol/version error, already reported
      break;
    }
  }
  (void)Io.flush();

  const SessionStats &St = S.stats();
  Registry.counter("serve.jobs_ok").add(St.JobsOk);
  Registry.counter("serve.jobs_failed").add(St.JobsFailed);
  Registry.counter("serve.quota_rejected").add(St.QuotaRejected);
  Registry.counter("serve.bytes_in").add(Io.bytesIn());
  Registry.counter("serve.bytes_out").add(Io.bytesOut());
  Registry.histogram("serve.session_lines").observe(LineNo);
  Registry.counter(SessionOk && St.ok() ? "serve.sessions_ok"
                                        : "serve.sessions_failed")
      .add();
  C->Done.store(true, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Signal glue
//===----------------------------------------------------------------------===//

namespace {

std::atomic<Server *> GServer{nullptr};

extern "C" void e9ServeOnSignal(int) {
  if (Server *S = GServer.load(std::memory_order_acquire))
    S->requestShutdown();
}

} // namespace

Status api::installShutdownSignals(Server *S) {
  GServer.store(S, std::memory_order_release);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  if (S) {
    SA.sa_handler = e9ServeOnSignal;
    sigemptyset(&SA.sa_mask);
  } else {
    SA.sa_handler = SIG_DFL;
  }
  if (::sigaction(SIGTERM, &SA, nullptr) != 0 ||
      ::sigaction(SIGINT, &SA, nullptr) != 0)
    return Status::error(format("sigaction failed: %s",
                                std::strerror(errno)));
  // A client that disappears mid-response must surface as EPIPE on the
  // write path, never as a process-killing SIGPIPE.
  ::signal(SIGPIPE, S ? SIG_IGN : SIG_DFL);
  return Status::ok();
}
