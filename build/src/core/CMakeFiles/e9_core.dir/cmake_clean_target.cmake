file(REMOVE_RECURSE
  "libe9_core.a"
)
