//===- examples/jump_census.cpp - A1 per-site jump counting ----*- C++ -*-===//
//
// The basic-block-counting analog (paper application A1): give every
// jmp/jcc instruction its own counter slot, rewrite, run, and print the
// hottest branches. Uses the per-site trampoline-spec API — each location
// gets a Counter trampoline pointing at a distinct slot.
//
// Run: ./jump_census
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "frontend/Rewriter.h"
#include "frontend/Runtime.h"
#include "frontend/Select.h"
#include "lowfat/LowFat.h"
#include "support/Format.h"
#include "vm/Loader.h"
#include "workload/Gen.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace e9;
using namespace e9::frontend;
using namespace e9::workload;

int main() {
  std::printf("jump_census: per-site branch counters via static "
              "rewriting\n\n");

  WorkloadConfig C;
  C.Name = "census";
  C.Seed = 7;
  C.NumFuncs = 10;
  C.MainIters = 5;
  Workload W = generateWorkload(C);

  DisasmResult D = linearDisassemble(W.Image);
  auto Locs = selectJumps(D.Insns);
  std::printf("found %zu jmp/jcc instructions in %zu decoded "
              "instructions\n",
              Locs.size(), D.Insns.size());

  // One counter slot per site.
  uint64_t CounterBase = addCounterSegment(W.Image);
  std::map<uint64_t, uint64_t> SlotOf;
  for (size_t I = 0; I != Locs.size(); ++I)
    SlotOf[Locs[I]] = CounterBase + I * 8;

  RewriteOptions Opts;
  Opts.ExtraReserved.push_back(lowfat::heapReservation());
  Opts.SpecFor = [&](uint64_t Addr) {
    core::TrampolineSpec S;
    S.Kind = core::TrampolineKind::Counter;
    S.CounterAddr = SlotOf.at(Addr);
    return S;
  };
  auto Out = rewrite(W.Image, Locs, Opts);
  if (!Out.isOk()) {
    std::printf("rewrite failed: %s\n", Out.reason().c_str());
    return 1;
  }
  std::printf("rewrote with coverage %.2f%% "
              "(Base %.1f%% / T1 %.1f%% / T2 %.1f%% / T3 %.1f%%)\n\n",
              Out->Stats.succPct(), Out->Stats.basePct(),
              Out->Stats.pct(core::Tactic::T1),
              Out->Stats.pct(core::Tactic::T2),
              Out->Stats.pct(core::Tactic::T3));

  // Run the instrumented binary and harvest the counters.
  vm::Vm V;
  lowfat::PlainHeap Heap;
  lowfat::installPlainHeap(V, Heap);
  auto L = vm::load(V, Out->Rewritten);
  if (!L.isOk()) {
    std::printf("load failed: %s\n", L.reason().c_str());
    return 1;
  }
  auto R = V.run(50'000'000);
  if (!R.ok()) {
    std::printf("run failed: %s\n", R.Error.c_str());
    return 1;
  }

  std::vector<std::pair<uint64_t, uint64_t>> Census; // (count, addr)
  uint64_t Total = 0;
  for (const auto &[Addr, Slot] : SlotOf) {
    uint64_t N = 0;
    (void)V.Mem.read64(Slot, N);
    Census.emplace_back(N, Addr);
    Total += N;
  }
  std::sort(Census.rbegin(), Census.rend());

  std::printf("executed %llu instructions; %llu branch visits recorded\n\n",
              (unsigned long long)R.InsnCount, (unsigned long long)Total);
  std::printf("hottest branches:\n");
  std::printf("  %-12s %-6s %10s\n", "address", "kind", "visits");
  for (size_t I = 0; I != Census.size() && I < 10; ++I) {
    const x86::Insn *Insn = nullptr;
    for (const x86::Insn &X : D.Insns)
      if (X.Address == Census[I].second) {
        Insn = &X;
        break;
      }
    const char *Kind = !Insn ? "?"
                       : Insn->isJmpRel8() || Insn->isJmpRel32()
                           ? "jmp"
                           : "jcc";
    std::printf("  %-12s %-6s %10llu\n", hex(Census[I].second).c_str(),
                Kind, (unsigned long long)Census[I].first);
  }

  bool Ok = Total > 0;
  std::printf("\n%s\n", Ok ? "OK: census collected from a statically "
                             "rewritten stripped binary."
                           : "no branch visits recorded?!");
  return Ok ? 0 : 1;
}
