//===- bench/Common.h - Shared benchmark harness ---------------*- C++ -*-===//
//
// Part of the E9Patch reproduction. Licensed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the per-table/figure benchmark binaries: evaluate
/// one suite entry under an instrumentation application (A1 jumps / A2
/// heap writes), producing the Table 1 column values (#Loc, Base%, T1-T3%,
/// Succ%, Time%, Size%) plus memory/mapping statistics. Every run also
/// verifies that the rewritten binary's observable behaviour matches the
/// original (semantic check built into the harness).
///
//===----------------------------------------------------------------------===//

#ifndef E9_BENCH_COMMON_H
#define E9_BENCH_COMMON_H

#include "frontend/Rewriter.h"
#include "obs/Metrics.h"
#include "workload/Run.h"
#include "workload/Suite.h"

#include <string>

namespace e9 {
namespace bench {

/// Which instrumentation application to evaluate.
enum class App {
  Jumps,      ///< A1: all jmp/jcc instructions.
  HeapWrites, ///< A2: all heap-pointer write instructions.
};

/// Evaluation result for one binary (one half-row of Table 1).
struct AppResult {
  std::string Name;
  double BinKB = 0; ///< Generated binary size (original file, KiB).
  size_t NLoc = 0;
  double BasePct = 0, T1Pct = 0, T2Pct = 0, T3Pct = 0, SuccPct = 0;
  double TimePct = 0; ///< Patched/original executed-cost ratio * 100.
  double SizePct = 0; ///< Patched/original file size * 100.
  uint64_t PhysBytes = 0;
  size_t Mappings = 0;
  bool SemanticsOk = false;
  std::string Error;
  /// Full pipeline metrics for this entry (tactic counts, trampoline
  /// bytes, alloc retries, grouping merge ratio, ...); `toJson()` embeds
  /// straight into a BENCH_*.json record.
  obs::MetricsSnapshot Metrics;
};

/// Extra knobs for ablation benches.
struct EvalOptions {
  bool EnableT1 = true;
  bool EnableT2 = true;
  bool EnableT3 = true;
  bool ForceB0 = false;
  bool GroupingEnabled = true;
  unsigned GroupingM = 1;
  bool MeasureTime = true;
  bool UseLowFat = false; ///< LowFat-check instrumentation instead of empty.
};

/// Generates, rewrites, runs and verifies one suite entry.
AppResult evalEntry(const workload::SuiteEntry &Entry, App Application,
                    const EvalOptions &Opts = EvalOptions());

/// Peak resident set size of this process so far, in KiB (0 when the
/// platform cannot report it). Recorded in BENCH_*.json so memory-path
/// regressions are as visible as throughput regressions.
uint64_t peakRssKb();

/// Prints the Table 1 style header / row / totals for a set of results.
void printTableHeader(const char *Title, bool WithTime);
void printTableRow(const AppResult &R, bool WithTime);
void printTableTotals(const std::vector<AppResult> &Rows, bool WithTime);

} // namespace bench
} // namespace e9

#endif // E9_BENCH_COMMON_H
