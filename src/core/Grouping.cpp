//===- core/Grouping.cpp --------------------------------------*- C++ -*-===//

#include "core/Grouping.h"

#include "support/FaultInjector.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

using namespace e9;
using namespace e9::core;

namespace {

constexpr uint64_t PageSize = 4096;

/// Byte-occupancy of one virtual block.
struct BlockOcc {
  uint64_t BaseAddr = 0;
  std::vector<uint64_t> Mask; ///< 1 bit per byte within the block.
  std::vector<uint8_t> Bytes; ///< Block-sized content (occupied bytes set).
  /// Half-open range of mask words that contain any set bit. A block
  /// typically holds a few tens of trampoline bytes out of 4 KiB, so
  /// bounding every scan to [LoW, HiW) turns the O(words) first-fit
  /// probes below into O(occupied words).
  uint32_t LoW = UINT32_MAX;
  uint32_t HiW = 0;

  bool disjointWith(const BlockOcc &O) const {
    uint32_t Lo = LoW > O.LoW ? LoW : O.LoW;
    uint32_t Hi = HiW < O.HiW ? HiW : O.HiW;
    for (uint32_t I = Lo; I < Hi; ++I)
      if (Mask[I] & O.Mask[I])
        return false;
    return true;
  }

  void mergeFrom(const BlockOcc &O) {
    for (uint32_t I = O.LoW; I < O.HiW; ++I) {
      assert((Mask[I] & O.Mask[I]) == 0 && "merging overlapping blocks");
      Mask[I] |= O.Mask[I];
    }
    // Unoccupied bytes are zero on both sides and the masks are disjoint,
    // so a plain OR merges content without consulting the mask per byte
    // (branchless, auto-vectorizes). One mask bit covers one byte, so
    // O's occupied byte range is [64*O.LoW, 64*O.HiW).
    for (size_t I = 64ull * O.LoW, E = std::min<size_t>(64ull * O.HiW,
                                                        Bytes.size());
         I < E; ++I)
      Bytes[I] |= O.Bytes[I];
    if (O.LoW < LoW)
      LoW = O.LoW;
    if (O.HiW > HiW)
      HiW = O.HiW;
  }
};

/// Splits the trampoline chunks into per-block occupancy records
/// (trampolines spanning a boundary become two mini-trampolines). Fails
/// when two chunks claim the same byte: that is corrupted input, and
/// proceeding would emit a block whose content depends on chunk order.
Status collectBlocks(const std::vector<TrampolineChunk> &Chunks,
                     uint64_t BlockSize, std::map<uint64_t, BlockOcc> &Blocks) {
  for (const TrampolineChunk &C : Chunks) {
    size_t Done = 0;
    while (Done < C.Bytes.size()) {
      uint64_t A = C.Addr + Done;
      uint64_t Base = A / BlockSize * BlockSize;
      uint64_t Off = A - Base;
      size_t N = std::min<size_t>(BlockSize - Off, C.Bytes.size() - Done);
      BlockOcc &B = Blocks[Base];
      if (B.Mask.empty()) {
        B.BaseAddr = Base;
        B.Mask.assign((BlockSize + 63) / 64, 0);
        B.Bytes.assign(BlockSize, 0);
      }
      // Claim the occupancy bits word-at-a-time; only on a clash fall
      // back to a byte scan to name the exact conflicting address.
      for (uint64_t Bit = Off; Bit != Off + N;) {
        uint64_t W = Bit / 64;
        uint64_t Lo = Bit % 64;
        uint64_t Take = std::min<uint64_t>(64 - Lo, Off + N - Bit);
        uint64_t M = (Take == 64 ? ~0ull : ((1ull << Take) - 1)) << Lo;
        if ((B.Mask[W] & M) != 0) {
          for (uint64_t I = Bit; I != Off + N; ++I)
            if ((B.Mask[I / 64] & (1ull << (I % 64))) != 0)
              return Status::error(
                  format("trampoline chunks overlap at %s: refusing to "
                         "merge conflicting occupancy",
                         hex(Base + I).c_str()));
        }
        B.Mask[W] |= M;
        if (W < B.LoW)
          B.LoW = static_cast<uint32_t>(W);
        if (W + 1 > B.HiW)
          B.HiW = static_cast<uint32_t>(W + 1);
        Bit += Take;
      }
      std::memcpy(B.Bytes.data() + Off, C.Bytes.data() + Done, N);
      Done += N;
    }
  }
  return Status::ok();
}

/// Coalesces mappings adjacent in both virtual space and block offsets.
size_t coalescedCount(std::vector<elf::Mapping> &Mappings) {
  std::sort(Mappings.begin(), Mappings.end(),
            [](const elf::Mapping &A, const elf::Mapping &B) {
              return A.VAddr < B.VAddr;
            });
  std::vector<elf::Mapping> Out;
  for (const elf::Mapping &M : Mappings) {
    if (!Out.empty()) {
      elf::Mapping &P = Out.back();
      if (P.BlockIndex == M.BlockIndex && P.VAddr + P.Size == M.VAddr &&
          P.Offset + P.Size == M.Offset && P.Flags == M.Flags) {
        P.Size += M.Size;
        continue;
      }
    }
    Out.push_back(M);
  }
  Mappings = std::move(Out);
  return Mappings.size();
}

} // namespace

Result<GroupingResult>
core::groupPages(const std::vector<TrampolineChunk> &Chunks,
                 const GroupingOptions &Opts) {
  if (E9_FAULT_POINT("core.group.merge"))
    return Result<GroupingResult>::error(
        "injected fault: core.group.merge (grouping merge failure)");
  GroupingResult R;
  uint64_t BlockSize = static_cast<uint64_t>(Opts.M) * PageSize;
  std::map<uint64_t, BlockOcc> Blocks;
  if (Status S = collectBlocks(Chunks, BlockSize, Blocks); !S)
    return Result<GroupingResult>(std::move(S));
  R.VirtualBlocks = Blocks.size();

  if (!Opts.Enabled) {
    // Naive one-to-one backing: all blocks laid out contiguously in one
    // physical region, in virtual order (file-backed contiguity lets
    // adjacent mappings coalesce, as a plain mmap of the file would).
    elf::PhysBlock PB;
    for (auto &[Base, B] : Blocks) {
      elf::Mapping M;
      M.VAddr = Base;
      M.BlockIndex = 0;
      M.Flags = elf::PF_R | elf::PF_X;
      M.Offset = PB.Bytes.size();
      M.Size = BlockSize;
      R.Mappings.push_back(M);
      PB.Bytes.insert(PB.Bytes.end(), B.Bytes.begin(), B.Bytes.end());
    }
    R.PhysBytes = PB.Bytes.size();
    if (!PB.Bytes.empty())
      R.Blocks.push_back(std::move(PB));
    R.RawMappings = R.Mappings.size();
    R.MappingCount = coalescedCount(R.Mappings);
    return R;
  }

  // Greedy first-fit partitioning: place each block into the first group
  // whose occupancy is disjoint; else open a new group.
  std::vector<BlockOcc> Groups;
  std::vector<std::vector<uint64_t>> Members;
  for (auto &[Base, B] : Blocks) {
    bool Placed = false;
    for (size_t G = 0; G != Groups.size(); ++G) {
      if (!Groups[G].disjointWith(B))
        continue;
      Groups[G].mergeFrom(B);
      Members[G].push_back(Base);
      Placed = true;
      break;
    }
    if (!Placed) {
      // Blocks is not consulted again: steal the 4 KiB payload.
      Groups.push_back(std::move(B));
      Members.push_back({Base});
    }
  }

  for (size_t G = 0; G != Groups.size(); ++G) {
    elf::PhysBlock PB;
    PB.Bytes = std::move(Groups[G].Bytes);
    R.Blocks.push_back(std::move(PB));
    for (uint64_t Base : Members[G]) {
      elf::Mapping M;
      M.VAddr = Base;
      M.BlockIndex = static_cast<uint32_t>(G);
      M.Flags = elf::PF_R | elf::PF_X;
      M.Offset = 0;
      M.Size = BlockSize;
      R.Mappings.push_back(M);
    }
    R.PhysBytes += BlockSize;
  }
  R.RawMappings = R.Mappings.size();
  R.MappingCount = coalescedCount(R.Mappings);
  return R;
}
