file(REMOVE_RECURSE
  "libe9_vm.a"
)
