# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("obs")
subdirs("x86")
subdirs("elf")
subdirs("vm")
subdirs("core")
subdirs("lowfat")
subdirs("verify")
subdirs("frontend")
subdirs("workload")
