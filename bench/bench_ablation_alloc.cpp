//===- bench/bench_ablation_alloc.cpp - allocator packing ------*- C++ -*-===//
//
// Ablation of the allocator's virtual page packing (DESIGN.md §4 design
// choice): bump zones try to place trampolines next to earlier ones with
// compatible pun constraints. The measured result is a *negative* one
// worth documenting: lowest-free-start first fit already clusters
// trampolines at the shared edges of overlapping pun windows, so the
// zone pass changes virtual-block counts only marginally (sometimes for
// the worse) on these workloads. The real fragmentation defence in this
// system is physical page grouping (bench_size_grouping); behaviour is
// identical either way, which this harness verifies.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "frontend/Prescan.h"
#include "lowfat/LowFat.h"
#include "workload/Run.h"

#include <cstdio>

using namespace e9;
using namespace e9::bench;
using namespace e9::frontend;
using namespace e9::workload;

int main() {
  std::printf("Ablation: allocator virtual-page packing on vs off "
              "(SPEC analogs, A1)\n\n");
  std::printf("%-12s %7s | %10s %10s | %10s %10s | %6s\n", "binary",
              "#Loc", "blocksOn", "blocksOff", "Size%On", "Size%Off",
              "ok");
  std::printf("------------------------------------------------------------"
              "--------------\n");

  size_t SumOn = 0, SumOff = 0;
  for (const SuiteEntry &E : specSuite()) {
    Workload W = generateWorkload(E.Config);
    auto Locs = prescanSelect(W.Image, SelectorKind::Jumps);

    RewriteOptions On;
    On.Patch.Spec.Kind = core::TrampolineKind::Empty;
    On.ExtraReserved.push_back(lowfat::heapReservation());
    RewriteOptions Off = On;
    Off.Patch.AllocPacking = false;

    auto ROn = rewrite(W.Image, Locs, On);
    auto ROff = rewrite(W.Image, Locs, Off);
    if (!ROn.isOk() || !ROff.isOk()) {
      std::printf("%-12s rewrite error\n", E.Config.Name.c_str());
      continue;
    }
    // Both variants must behave identically.
    RunOutcome Ref = runImage(W.Image);
    RunOutcome GOn = runImage(ROn->Rewritten);
    RunOutcome GOff = runImage(ROff->Rewritten);
    bool Ok = Ref.ok() && GOn.ok() && GOff.ok() && GOn.Rax == Ref.Rax &&
              GOff.Rax == Ref.Rax;

    std::printf("%-12s %7zu | %10zu %10zu | %10.2f %10.2f | %6s\n",
                E.Config.Name.c_str(), Locs.size(),
                ROn->Grouping.VirtualBlocks, ROff->Grouping.VirtualBlocks,
                ROn->sizePct(), ROff->sizePct(), Ok ? "yes" : "NO");
    SumOn += ROn->Grouping.VirtualBlocks;
    SumOff += ROff->Grouping.VirtualBlocks;
  }
  std::printf("------------------------------------------------------------"
              "--------------\n");
  std::printf("%-12s %7s | %10zu %10zu  (virtual blocks occupied)\n",
              "Total", "", SumOn, SumOff);
  return 0;
}
