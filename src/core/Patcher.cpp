//===- core/Patcher.cpp ---------------------------------------*- C++ -*-===//

#include "core/Patcher.h"

#include "core/Pun.h"
#include "support/Format.h"
#include "vm/Hooks.h" // address-space constants only (header-only)

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace e9;
using namespace e9::core;
using namespace e9::x86;

const char *core::tacticName(Tactic T) {
  static const char *const Names[] = {"B1", "B2", "T1", "T2",
                                      "T3", "B0", "failed"};
  return Names[static_cast<size_t>(T)];
}

const char *core::tacticCeilingName(TacticCeiling C) {
  static const char *const Names[] = {"full", "no-t3", "no-t2", "no-t1",
                                      "b0-only"};
  return Names[static_cast<size_t>(C)];
}

const char *core::failureReasonName(FailureReason R) {
  static const char *const Names[] = {
      "none",           "no-instruction", "spec-inapplicable", "locked-bytes",
      "no-pun-target",  "alloc-failed",   "build-failed"};
  return Names[static_cast<size_t>(R)];
}

void core::reserveDefaultRegions(Allocator &Alloc, const elf::Image &Img) {
  constexpr uint64_t Page = 4096;
  // NULL page and low memory (mmap_min_addr analog).
  Alloc.reserve(0, 0x10000);
  // Every image segment, page-rounded, plus one guard page on each side.
  for (const elf::Segment &S : Img.Segments) {
    uint64_t Lo = S.VAddr / Page * Page;
    uint64_t Hi = (S.endAddr() + Page - 1) / Page * Page;
    Alloc.reserve(Lo - Page, Hi + Page);
  }
  // VM hook/exit region and the stack area.
  Alloc.reserve(vm::HookRegionStart, vm::HookRegionEnd);
  Alloc.reserve(0x7fff00000000ULL, 1ull << 47);
  // Non-canonical space (also catches negative-offset targets that wrap).
  Alloc.reserve(1ull << 47, UINT64_MAX);
}

Patcher::Patcher(elf::Image &Img, std::vector<Insn> Insns, PatchOptions Opts)
    : Img(Img), Insns(std::move(Insns)), Opts(std::move(Opts)) {
  std::sort(this->Insns.begin(), this->Insns.end(),
            [](const Insn &A, const Insn &B) { return A.Address < B.Address; });
  Alloc.PackingEnabled = this->Opts.AllocPacking;
  reserveDefaultRegions(Alloc, Img);
}

const Insn *Patcher::insnAt(uint64_t Addr) const {
  auto It = std::lower_bound(
      Insns.begin(), Insns.end(), Addr,
      [](const Insn &I, uint64_t A) { return I.Address < A; });
  return It != Insns.end() && It->Address == Addr ? &*It : nullptr;
}

const Insn *Patcher::nextInsn(const Insn &I) const {
  // Callers always pass references into Insns, so the successor (if it
  // starts exactly at the end of I — linear disassembly may have gaps) is
  // the next element.
  if (&I >= Insns.data() && &I < Insns.data() + Insns.size()) {
    const Insn *N = &I + 1;
    if (N == Insns.data() + Insns.size() || N->Address != I.Address + I.Length)
      return nullptr;
    return N;
  }
  return insnAt(I.Address + I.Length);
}

bool Patcher::writeBytes(Txn &T, uint64_t Addr, const uint8_t *Bytes,
                         size_t N) {
  assert(N <= MaxInsnLength && "patch writes are at most one instruction");
  UndoWrite U;
  U.Addr = Addr;
  U.Len = static_cast<uint8_t>(N);
  if (!Img.readBytes(Addr, U.Bytes, N))
    return false;
  if (!Img.writeBytes(Addr, Bytes, N))
    return false;
  T.OldBytes.push_back(U);
  Locks.markModifiedRecordNew(Addr, Addr + N, T.ModifiedAdded);
  return true;
}

void Patcher::rollback(Txn &T) {
  for (auto It = T.OldBytes.rbegin(); It != T.OldBytes.rend(); ++It) {
    [[maybe_unused]] Status S = Img.writeBytes(It->Addr, It->Bytes, It->Len);
    assert(S.isOk() && "rollback write must succeed");
  }
  for (const Interval &I : T.LocksAdded)
    Locks.unlock(I.Lo, I.Hi);
  for (const Interval &I : T.ModifiedAdded)
    Locks.unmarkModified(I.Lo, I.Hi);
  for (auto It = T.AllocsAdded.rbegin(); It != T.AllocsAdded.rend(); ++It)
    Alloc.free(It->first, It->second);
  Chunks.resize(T.ChunksMark);
  Jumps.resize(T.RecordsMark);
  // Clear in place: the journals keep their arena-backed capacity, which
  // is reclaimed wholesale by TxnArena.reset() at the next patchOne().
  T.OldBytes.clear();
  T.LocksAdded.clear();
  T.ModifiedAdded.clear();
  T.AllocsAdded.clear();
  T.ChunksMark = Chunks.size();
  T.RecordsMark = Jumps.size();
}

std::vector<Interval> Patcher::modifiedRanges() const {
  std::vector<Interval> Out;
  for (const auto &[Lo, Hi] : Locks.modified())
    Out.push_back(Interval{Lo, Hi});
  return Out;
}

std::optional<Patcher::JumpInstall>
Patcher::installJump(Txn &T, uint64_t JumpAddr, uint64_t WritableEnd,
                     unsigned MinPads, unsigned MaxPads,
                     const TrampolineSpec &Spec, const Insn &Displaced,
                     const uint8_t *DisplacedBytes) {
  unsigned TrampSize = trampolineSize(Spec, Displaced);
  if (TrampSize == 0) {
    noteFailure(FailureReason::SpecInapplicable);
    return std::nullopt;
  }

  // Original bytes of the displaced instruction.
  uint8_t Orig[MaxInsnLength];
  if (DisplacedBytes)
    std::memcpy(Orig, DisplacedBytes, Displaced.Length);
  else if (!Img.readBytes(Displaced.Address, Orig, Displaced.Length))
    return std::nullopt;

  for (unsigned Pads = MinPads; Pads <= MaxPads; ++Pads) {
    uint64_t RelField = JumpAddr + Pads + 1;
    if (RelField > WritableEnd)
      break; // Opcode no longer inside the writable zone.

    // Current values of the four potential rel32 bytes; positions inside
    // the writable zone will be overwritten and may read as anything.
    uint8_t Rel32Bytes[4] = {0, 0, 0, 0};
    bool Readable = true;
    for (unsigned B = 0; B != 4; ++B) {
      uint64_t A = RelField + B;
      if (A < WritableEnd)
        continue; // Free byte.
      if (!Img.readBytes(A, &Rel32Bytes[B], 1)) {
        Readable = false;
        break;
      }
    }
    if (!Readable)
      continue;

    auto Range = punTargetRange(JumpAddr, Pads, WritableEnd, Rel32Bytes);
    if (!Range.has_value()) {
      noteFailure(FailureReason::NoPunTarget);
      continue;
    }

    // The bytes we are about to modify must all be unlocked.
    uint64_t WriteEnd = RelField + Range->FreeBytes;
    if (Locks.anyLocked(JumpAddr, WriteEnd)) {
      noteFailure(FailureReason::LockedBytes);
      break; // The write range only grows with more padding.
    }

    auto Tramp = Alloc.allocate(TrampSize, Range->Targets);
    if (!Tramp.has_value()) {
      noteFailure(FailureReason::AllocFailed);
      ++Stats.AllocRetries;
      continue;
    }
    T.AllocsAdded.emplace_back(*Tramp, TrampSize);

    auto Bytes = buildTrampoline(Spec, Displaced, Orig, *Tramp);
    if (!Bytes.isOk()) {
      noteFailure(FailureReason::BuildFailed);
      Alloc.free(*Tramp, TrampSize);
      T.AllocsAdded.pop_back();
      continue;
    }
    Chunks.push_back(TrampolineChunk{*Tramp, Bytes.take()});

    // Encode: pads, e9, then the free low rel32 bytes.
    int32_t Rel = Range->relFor(*Tramp);
    assert((Range->FreeBytes == 4 ||
            (static_cast<uint32_t>(Rel) >> (8 * Range->FreeBytes)) ==
                (Range->Fixed >> (8 * Range->FreeBytes))) &&
           "pun arithmetic mismatch");
    uint8_t Enc[MaxInsnLength];
    unsigned N = 0;
    for (unsigned P = 0; P != Pads; ++P)
      Enc[N++] = JumpPadBytes[P % MaxJumpPads];
    Enc[N++] = 0xe9;
    for (unsigned B = 0; B != Range->FreeBytes; ++B)
      Enc[N++] = static_cast<uint8_t>(static_cast<uint32_t>(Rel) >> (8 * B));
    if (!writeBytes(T, JumpAddr, Enc, N)) {
      // Undo only this attempt; the txn may hold earlier tactic steps.
      Chunks.pop_back();
      Alloc.free(*Tramp, TrampSize);
      T.AllocsAdded.pop_back();
      continue;
    }
    // Lock the full (padded) jump encoding: modified + punned bytes.
    Locks.lockRecordNew(JumpAddr, JumpAddr + Pads + 5, T.LocksAdded);
    Jumps.push_back(JumpRecord{JumpAddr, static_cast<uint8_t>(Pads + 5),
                               static_cast<uint8_t>(N), *Tramp,
                               JumpKind::JmpRel32});
    return JumpInstall{*Tramp, Pads, Range->FreeBytes};
  }
  return std::nullopt;
}

TrampolineSpec Patcher::victimSpec(const Insn &Victim, bool &IsRescue) const {
  auto It = FailedSpecs.find(Victim.Address);
  if (It != FailedSpecs.end()) {
    IsRescue = true;
    return It->second;
  }
  IsRescue = false;
  TrampolineSpec S;
  S.Kind = TrampolineKind::Evictee;
  return S;
}

void Patcher::noteRescue(uint64_t VictimAddr, Tactic Via, uint64_t TrampAddr) {
  Trace.rescue(VictimAddr, tacticName(Via), TrampAddr);
  FailedSites.erase(VictimAddr);
  FailedSpecs.erase(VictimAddr);
  assert(Stats.Count[static_cast<size_t>(Tactic::Failed)] > 0);
  --Stats.Count[static_cast<size_t>(Tactic::Failed)];
  ++Stats.Count[static_cast<size_t>(Via)];
  ++Stats.Rescued;
  auto It = ResultIndex.find(VictimAddr);
  if (It != ResultIndex.end()) {
    Results[It->second].Used = Via;
    Results[It->second].TrampolineAddr = TrampAddr;
  }
}

void Patcher::traceAttemptFailed(uint64_t Addr, const char *TacticStr) {
  if (!Trace.enabled())
    return;
  obs::AttemptEvent E;
  E.Site = Addr;
  E.Tactic = TacticStr;
  E.Ok = false;
  E.Reason = SiteReason == FailureReason::None
                 ? nullptr
                 : failureReasonName(SiteReason);
  Trace.attempt(E);
}

Tactic Patcher::tryDirect(uint64_t Addr, const TrampolineSpec &Spec,
                          uint64_t &TrampAddr) {
  const Insn *I = insnAt(Addr);
  assert(I && "tryDirect requires a known instruction");
  unsigned MaxPads = (Opts.EnableT1 && CeilT1)
                         ? std::min<unsigned>(MaxJumpPads, I->Length - 1)
                         : 0;
  Txn T(TxnArena);
  T.ChunksMark = Chunks.size();
  T.RecordsMark = Jumps.size();
  auto J = installJump(T, Addr, Addr + I->Length, 0, MaxPads, Spec, *I);
  if (!J.has_value())
    return Tactic::Failed;
  TrampAddr = J->TrampAddr;
  Tactic Used = J->Pads > 0          ? Tactic::T1
                : I->Length >= 5     ? Tactic::B1
                                     : Tactic::B2;
  if (Trace.enabled()) {
    obs::AttemptEvent E;
    E.Site = Addr;
    E.Tactic = tacticName(Used);
    E.Ok = true;
    E.Tramp = J->TrampAddr;
    E.Pads = static_cast<int>(J->Pads);
    E.PunBytes = static_cast<int>(4 - J->FreeBytes);
    Trace.attempt(E);
  }
  return Used;
}

bool Patcher::tryT2(uint64_t Addr, const TrampolineSpec &Spec,
                    uint64_t &TrampAddr) {
  const Insn *I = insnAt(Addr);
  const Insn *S = nextInsn(*I);
  if (!S)
    return false;
  // The successor must still be the original instruction.
  if (Locks.anyModified(S->Address, S->Address + S->Length))
    return false;

  Txn T(TxnArena);
  T.ChunksMark = Chunks.size();
  T.RecordsMark = Jumps.size();

  bool Rescue = false;
  TrampolineSpec VS = victimSpec(*S, Rescue);
  auto Evict = installJump(T, S->Address, S->Address + S->Length, 0,
                           std::min<unsigned>(MaxJumpPads, S->Length - 1), VS,
                           *S);
  if (!Evict.has_value() && Rescue) {
    // The pending patch spec may not apply to the victim; fall back to a
    // plain evictee trampoline.
    Rescue = false;
    VS.Kind = TrampolineKind::Evictee;
    VS.Raw.clear();
    Evict = installJump(T, S->Address, S->Address + S->Length, 0,
                        std::min<unsigned>(MaxJumpPads, S->Length - 1), VS,
                        *S);
  }
  if (!Evict.has_value())
    return false;

  unsigned MaxPads = (Opts.EnableT1 && CeilT1)
                         ? std::min<unsigned>(MaxJumpPads, I->Length - 1)
                         : 0;
  auto J = installJump(T, Addr, Addr + I->Length, 0, MaxPads, Spec, *I);
  if (!J.has_value()) {
    rollback(T);
    return false;
  }
  ++Stats.Evictions;
  if (Trace.enabled()) {
    obs::AttemptEvent E;
    E.Site = Addr;
    E.Tactic = tacticName(Tactic::T2);
    E.Ok = true;
    E.Tramp = J->TrampAddr;
    E.Victim = S->Address;
    E.HasVictim = true;
    E.Rescue = Rescue;
    Trace.attempt(E);
  }
  if (Rescue)
    noteRescue(S->Address, Tactic::T2, Evict->TrampAddr);
  TrampAddr = J->TrampAddr;
  return true;
}

bool Patcher::tryT3(uint64_t Addr, const TrampolineSpec &Spec,
                    uint64_t &TrampAddr) {
  const Insn *I = insnAt(Addr);
  unsigned L = I->Length;

  // JShort is `eb rel8` at the patch location. For one-byte instructions
  // the rel8 operand is punned against the successor's first byte, fixing
  // the one possible JPatch position (paper limitation L2).
  bool FixedRel = L < 2;
  uint8_t FixedRel8 = 0;
  if (FixedRel) {
    if (!Img.readBytes(Addr + 1, &FixedRel8, 1))
      return false;
    if (FixedRel8 > 0x7f)
      return false; // Negative / backward short jumps are excluded (S1).
  }
  if (Locks.anyLocked(Addr, Addr + 2))
    return false;

  // Walk forward victims within short-jump range.
  const Insn *V = nextInsn(*I);
  while (V != nullptr && V->Address <= Addr + 2 + 127) {
    if (V->Length < 2 ||
        Locks.anyModified(V->Address, V->Address + V->Length)) {
      V = nextInsn(*V);
      continue;
    }
    for (unsigned J = 1; J < V->Length; ++J) {
      uint64_t JPatchPos = V->Address + J;
      int64_t Rel8 = static_cast<int64_t>(JPatchPos) -
                     static_cast<int64_t>(Addr + 2);
      if (Rel8 < 0)
        continue;
      if (Rel8 > 127)
        break;
      if (FixedRel && Rel8 != FixedRel8)
        continue;

      Txn T(TxnArena);
      T.ChunksMark = Chunks.size();
      T.RecordsMark = Jumps.size();

      // Capture the victim's original bytes before JPatch overwrites its
      // tail: the evictee trampoline must displace the *original* victim.
      uint8_t VictimBytes[MaxInsnLength];
      if (!Img.readBytes(V->Address, VictimBytes, V->Length))
        break;

      // JPatch: punned jump inside the victim, to the patch trampoline.
      auto JP = installJump(T, JPatchPos, V->Address + V->Length, 0,
                            std::min<unsigned>(MaxJumpPads,
                                               V->Length - J - 1),
                            Spec, *I);
      if (!JP.has_value()) {
        rollback(T);
        continue;
      }

      // JVictim: replacement jump for the victim, punned against JPatch.
      bool Rescue = false;
      TrampolineSpec VS = victimSpec(*V, Rescue);
      auto JV = installJump(T, V->Address, JPatchPos, 0,
                            std::min<unsigned>(MaxJumpPads, J - 1), VS, *V,
                            VictimBytes);
      if (!JV.has_value() && Rescue) {
        Rescue = false;
        VS.Kind = TrampolineKind::Evictee;
        VS.Raw.clear();
        JV = installJump(T, V->Address, JPatchPos, 0,
                         std::min<unsigned>(MaxJumpPads, J - 1), VS, *V,
                         VictimBytes);
      }
      if (!JV.has_value()) {
        rollback(T);
        continue;
      }

      // JShort at the patch location.
      if (!FixedRel) {
        uint8_t Enc[2] = {0xeb, static_cast<uint8_t>(Rel8)};
        if (!writeBytes(T, Addr, Enc, 2)) {
          rollback(T);
          continue;
        }
      } else {
        uint8_t Enc = 0xeb;
        if (!writeBytes(T, Addr, &Enc, 1)) {
          rollback(T);
          continue;
        }
      }
      Locks.lockRecordNew(Addr, Addr + 2, T.LocksAdded);
      Jumps.push_back(JumpRecord{Addr, 2, static_cast<uint8_t>(FixedRel ? 1 : 2),
                                 Addr + 2 + static_cast<uint64_t>(Rel8),
                                 JumpKind::JmpRel8});

      ++Stats.Evictions;
      if (Trace.enabled()) {
        obs::AttemptEvent E;
        E.Site = Addr;
        E.Tactic = tacticName(Tactic::T3);
        E.Ok = true;
        E.Tramp = JP->TrampAddr;
        E.Victim = V->Address;
        E.HasVictim = true;
        E.Rescue = Rescue;
        Trace.attempt(E);
      }
      if (Rescue)
        noteRescue(V->Address, Tactic::T3, JV->TrampAddr);
      TrampAddr = JP->TrampAddr;
      return true;
    }
    V = nextInsn(*V);
  }
  return false;
}

bool Patcher::tryB0(uint64_t Addr) {
  const Insn *I = insnAt(Addr);
  if (Locks.isLocked(Addr)) {
    noteFailure(FailureReason::LockedBytes);
    return false;
  }
  std::vector<uint8_t> Orig(I->Length);
  if (!Img.readBytes(Addr, Orig.data(), I->Length))
    return false;
  uint8_t Int3 = 0xcc;
  Txn T(TxnArena);
  T.ChunksMark = Chunks.size();
  T.RecordsMark = Jumps.size();
  if (!writeBytes(T, Addr, &Int3, 1))
    return false;
  Locks.lockRecordNew(Addr, Addr + 1, T.LocksAdded);
  Jumps.push_back(JumpRecord{Addr, 1, 1, 0, JumpKind::Int3});
  B0Table.emplace(Addr, std::move(Orig));
  return true;
}

Tactic Patcher::patchOne(uint64_t Addr, const TrampolineSpec &Spec) {
  // All transaction journals from the previous site are dead (committed or
  // rolled back; Txns never span sites), so reclaim them in one rewind.
  TxnArena.reset();
  ++Stats.NLoc;
  ResultIndex[Addr] = Results.size();
  Results.push_back(PatchSiteResult{Addr, Tactic::Failed, 0});
  SiteReason = FailureReason::None;
  obs::ScopedSpan SiteSpan(Prof, "site");

  TacticCeiling Ceil =
      Opts.CeilingFor ? Opts.CeilingFor(Addr) : TacticCeiling::Full;

  Tactic Used = Tactic::Failed;
  uint64_t TrampAddr = 0;
  if (insnAt(Addr) == nullptr) {
    noteFailure(FailureReason::NoInstruction);
  } else if (Opts.ForceB0 || Ceil == TacticCeiling::B0Only) {
    obs::ScopedSpan Span(Prof, "tactic.b0");
    if (tryB0(Addr))
      Used = Tactic::B0;
    else
      traceAttemptFailed(Addr, tacticName(Tactic::B0));
  } else {
    {
      obs::ScopedSpan Span(Prof, "tactic.direct");
      CeilT1 = Ceil <= TacticCeiling::NoT2;
      Used = tryDirect(Addr, Spec, TrampAddr);
      CeilT1 = true;
      if (Used == Tactic::Failed)
        traceAttemptFailed(Addr, "direct");
    }
    if (Used == Tactic::Failed && Opts.EnableT2 &&
        Ceil <= TacticCeiling::NoT3) {
      obs::ScopedSpan Span(Prof, "tactic.t2");
      CeilT1 = Ceil <= TacticCeiling::NoT2;
      bool Ok = tryT2(Addr, Spec, TrampAddr);
      CeilT1 = true;
      if (Ok)
        Used = Tactic::T2;
      else
        traceAttemptFailed(Addr, tacticName(Tactic::T2));
    }
    if (Used == Tactic::Failed && Opts.EnableT3 &&
        Ceil == TacticCeiling::Full) {
      obs::ScopedSpan Span(Prof, "tactic.t3");
      if (tryT3(Addr, Spec, TrampAddr))
        Used = Tactic::T3;
      else
        traceAttemptFailed(Addr, tacticName(Tactic::T3));
    }
    if (Used == Tactic::Failed && Opts.B0Fallback) {
      obs::ScopedSpan Span(Prof, "tactic.b0");
      if (tryB0(Addr))
        Used = Tactic::B0;
      else
        traceAttemptFailed(Addr, tacticName(Tactic::B0));
    }
    if (Used == Tactic::Failed) {
      FailedSites.insert(Addr);
      FailedSpecs.emplace(Addr, Spec);
    }
  }
  if (Used == Tactic::B0 && Trace.enabled()) {
    obs::AttemptEvent E;
    E.Site = Addr;
    E.Tactic = tacticName(Tactic::B0);
    E.Ok = true;
    Trace.attempt(E);
  }

  ++Stats.Count[static_cast<size_t>(Used)];
  PatchSiteResult &R = Results[ResultIndex[Addr]];
  R.Used = Used;
  R.TrampolineAddr = TrampAddr;
  if (Used == Tactic::Failed) {
    R.Reason = SiteReason;
    ++Stats.ReasonCount[static_cast<size_t>(SiteReason)];
  }
  Trace.site(Addr, tacticName(Used), TrampAddr,
             Used == Tactic::Failed ? failureReasonName(SiteReason)
                                    : nullptr);
  return Used;
}

void Patcher::patchAll(const std::vector<uint64_t> &PatchLocs) {
  // Strategy S1: strictly descending address order.
  std::vector<uint64_t> Sorted(PatchLocs);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  for (auto It = Sorted.rbegin(); It != Sorted.rend(); ++It)
    patchOne(*It, Opts.Spec);
}
