//===- obs/JsonWriter.cpp -------------------------------------*- C++ -*-===//

#include "obs/JsonWriter.h"

#include <cstdio>
#include <cstdlib>

using namespace e9;
using namespace e9::obs;

std::string obs::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      // Escape control bytes (invalid in a JSON string) and non-ASCII
      // bytes (raw 0x80..0xff is not valid UTF-8, and symbol names from
      // arbitrary binaries can contain any byte). \u00XX keeps the output
      // pure ASCII and the parser maps it back to the original byte, so
      // the escape round-trips losslessly.
      if (C < 0x20 || C >= 0x80) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  return Out;
}

void JsonWriter::key(const char *K) {
  if (Out.size() > 1)
    Out.push_back(',');
  Out.push_back('"');
  Out += K;
  Out += "\":";
}

JsonWriter &JsonWriter::field(const char *Key, std::string_view V) {
  key(Key);
  Out.push_back('"');
  Out += jsonEscape(V);
  Out.push_back('"');
  return *this;
}

JsonWriter &JsonWriter::field(const char *Key, uint64_t V) {
  key(Key);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::field(const char *Key, int64_t V) {
  key(Key);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::field(const char *Key, bool V) {
  key(Key);
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::fixed(const char *Key, double V, int Precision) {
  key(Key);
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::hex(const char *Key, uint64_t Addr) {
  key(Key);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "\"0x%llx\"",
                static_cast<unsigned long long>(Addr));
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::raw(const char *Key, std::string_view Json) {
  key(Key);
  Out += Json;
  return *this;
}

namespace {

/// Cursor over a line being parsed.
struct Parser {
  std::string_view S;
  size_t I = 0;

  void skipWs() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t'))
      ++I;
  }
  bool eat(char C) {
    skipWs();
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }
  bool literal(std::string_view Lit) {
    if (S.substr(I, Lit.size()) != Lit)
      return false;
    I += Lit.size();
    return true;
  }

  /// Parses a JSON string (opening quote already consumed).
  bool string(std::string &Out) {
    Out.clear();
    while (I < S.size()) {
      char C = S[I++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (I == S.size())
        return false;
      char E = S[I++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (I + 4 > S.size())
          return false;
        char Hex[5] = {S[I], S[I + 1], S[I + 2], S[I + 3], 0};
        char *End = nullptr;
        unsigned long V = std::strtoul(Hex, &End, 16);
        if (End != Hex + 4)
          return false;
        I += 4;
        // Escapes up to \u00ff map back to the raw byte (the writer emits
        // every control/non-ASCII byte this way, so escaping round-trips
        // losslessly). Higher code points are outside the byte-string
        // model and round to '?'.
        Out.push_back(V < 0x100 ? static_cast<char>(V) : '?');
        break;
      }
      default:
        return false;
      }
    }
    return false;
  }

  bool value(JsonValue &V) {
    skipWs();
    if (I == S.size())
      return false;
    char C = S[I];
    if (C == '"') {
      ++I;
      V.K = JsonValue::Kind::String;
      return string(V.Str);
    }
    if (C == 't') {
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      return literal("true");
    }
    if (C == 'f') {
      V.K = JsonValue::Kind::Bool;
      V.B = false;
      return literal("false");
    }
    if (C == 'n') {
      V.K = JsonValue::Kind::Null;
      return literal("null");
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      size_t Start = I;
      while (I < S.size() && (S[I] == '-' || S[I] == '+' || S[I] == '.' ||
                              S[I] == 'e' || S[I] == 'E' ||
                              (S[I] >= '0' && S[I] <= '9')))
        ++I;
      std::string Num(S.substr(Start, I - Start));
      char *End = nullptr;
      V.K = JsonValue::Kind::Number;
      V.Num = std::strtod(Num.c_str(), &End);
      return End == Num.c_str() + Num.size() && !Num.empty();
    }
    return false; // '{' or '[' here = nested value = schema violation.
  }
};

} // namespace

std::optional<std::map<std::string, JsonValue>>
obs::parseFlatObject(std::string_view Line) {
  Parser P{Line};
  if (!P.eat('{'))
    return std::nullopt;
  std::map<std::string, JsonValue> Out;
  P.skipWs();
  if (P.eat('}')) {
    P.skipWs();
    return P.I == Line.size() ? std::optional(std::move(Out)) : std::nullopt;
  }
  for (;;) {
    if (!P.eat('"'))
      return std::nullopt;
    std::string Key;
    if (!P.string(Key) || !P.eat(':'))
      return std::nullopt;
    JsonValue V;
    if (!P.value(V))
      return std::nullopt;
    Out[std::move(Key)] = std::move(V);
    if (P.eat(','))
      continue;
    if (!P.eat('}'))
      return std::nullopt;
    break;
  }
  P.skipWs();
  if (P.I != Line.size())
    return std::nullopt;
  return Out;
}

std::optional<uint64_t> obs::jsonToU64(const JsonValue &V) {
  if (V.isNumber()) {
    // Doubles are exact integers only below 2^53; larger values must use
    // the hex-string form or they would round silently.
    if (V.Num < 0 || V.Num != static_cast<double>(V.asU64()) ||
        V.Num >= 9007199254740992.0 /* 2^53 */)
      return std::nullopt;
    return V.asU64();
  }
  if (V.isString() && V.Str.size() > 2 && V.Str.rfind("0x", 0) == 0) {
    uint64_t Out = 0;
    for (size_t I = 2; I != V.Str.size(); ++I) {
      char C = V.Str[I];
      unsigned Digit;
      if (C >= '0' && C <= '9')
        Digit = C - '0';
      else if (C >= 'a' && C <= 'f')
        Digit = 10 + (C - 'a');
      else if (C >= 'A' && C <= 'F')
        Digit = 10 + (C - 'A');
      else
        return std::nullopt;
      if (Out >> 60)
        return std::nullopt; // would overflow 64 bits
      Out = (Out << 4) | Digit;
    }
    return Out;
  }
  return std::nullopt;
}
