//===- bench/bench_scale.cpp - very-large-binary scalability ---*- C++ -*-===//
//
// The paper's headline claim is scalability: E9Patch rewrites >100MB
// browsers with tens of thousands of patch points because every tactic is
// local and control-flow agnostic. This harness scales the Chrome analog
// up by an order of magnitude over the Table 1 version and reports
// rewriting throughput, coverage and output statistics. Shape: coverage
// stays ~100% and throughput stays flat as the binary grows (no global
// analysis anywhere in the pipeline).
//
// Besides the human-readable table, the run appends one record per config
// to BENCH_scale.json (machine-readable: sites/sec plus per-phase times)
// so CI can track throughput regressions.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "frontend/Prescan.h"
#include "frontend/Rewriter.h"
#include "lowfat/LowFat.h"

#include <chrono>
#include <cstdio>

using namespace e9;
using namespace e9::bench;
using namespace e9::frontend;
using namespace e9::workload;

int main() {
  std::printf("Scalability sweep: rewriting throughput vs binary size "
              "(A1, empty)\n\n");
  std::printf("%8s %10s %9s %9s %10s %12s %10s\n", "funcs", "codeKiB",
              "#Loc", "Succ%", "ms", "locs/s", "Size%");
  std::printf("------------------------------------------------------------"
              "---------\n");

  FILE *Json = std::fopen("BENCH_scale.json", "w");
  if (Json)
    std::fprintf(Json, "[\n");
  bool First = true;

  for (unsigned Funcs : {50u, 200u, 800u, 3200u}) {
    WorkloadConfig C;
    C.Name = "scale";
    C.Seed = 900 + Funcs;
    C.Pie = true;
    C.NumFuncs = Funcs;
    C.MainIters = 1;
    Workload W = generateWorkload(C);

    auto T0 = std::chrono::steady_clock::now();
    PrescanStats PS;
    auto Locs = prescanSelect(W.Image, SelectorKind::Jumps, &PS);
    size_t NumInsns = PS.NumInsns;
    RewriteOptions RO;
    RO.Patch.Spec.Kind = core::TrampolineKind::Empty;
    RO.ExtraReserved.push_back(lowfat::heapReservation());
    auto Out = rewrite(W.Image, Locs, RO);
    auto T1 = std::chrono::steady_clock::now();
    if (!Out.isOk()) {
      std::printf("%8u rewrite error: %s\n", Funcs, Out.reason().c_str());
      continue;
    }
    double Ms =
        std::chrono::duration<double, std::milli>(T1 - T0).count();
    double SitesPerSec = Locs.empty() ? 0 : 1000.0 * Locs.size() / Ms;
    double InsnsPerSec = NumInsns == 0 ? 0 : 1000.0 * NumInsns / Ms;
    std::printf("%8u %10.1f %9zu %9.2f %10.1f %12.0f %10.2f\n", Funcs,
                W.Image.textSegment()->Bytes.size() / 1024.0, Locs.size(),
                Out->Stats.succPct(), Ms, SitesPerSec, Out->sizePct());
    if (Json) {
      const obs::PhaseProfile &P = Out->Profile;
      std::fprintf(
          Json,
          "%s  {\"bench\": \"scale\", \"funcs\": %u, \"code_bytes\": %zu,\n"
          "   \"scan_backend\": \"%s\", \"full_decodes\": %zu,\n"
          "   \"sites\": %zu, \"succ_pct\": %.2f, \"total_ms\": %.2f,\n"
          "   \"sites_per_sec\": %.0f, \"insns\": %zu, "
          "\"insns_per_sec\": %.0f,\n"
          "   \"peak_rss_kb\": %llu, \"jobs\": %u, \"shards\": %zu,\n"
          "   \"phases_ms\": {\"disasm\": %.2f, \"patch\": %.2f, "
          "\"merge\": %.2f, \"group\": %.2f, \"write\": %.2f, "
          "\"verify\": %.2f}, \"metrics\": %s}",
          First ? "" : ",\n", Funcs, W.Image.textSegment()->Bytes.size(),
          x86::scanBackendName(PS.Backend), PS.FullDecodes, Locs.size(), Out->Stats.succPct(), Ms, SitesPerSec, NumInsns,
          InsnsPerSec,
          static_cast<unsigned long long>(peakRssKb()), Out->JobsUsed,
          Out->ShardCount, P.ms("disasm"), P.ms("patch"), P.ms("merge"),
          P.ms("group"), P.ms("write"), P.ms("verify"),
          Out->Metrics.toJson().c_str());
      First = false;
    }
  }
  if (Json) {
    std::fprintf(Json, "\n]\n");
    std::fclose(Json);
    std::printf("\nwrote BENCH_scale.json\n");
  }
  return 0;
}
