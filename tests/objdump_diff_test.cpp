//===- tests/objdump_diff_test.cpp - decoder vs binutils ------*- C++ -*-===//
//
// Differential test of the instruction-length decoder against GNU objdump:
// both disassemble the same generated code linearly and must agree on
// every instruction boundary. Skipped when objdump is unavailable.
//
//===----------------------------------------------------------------------===//

#include "frontend/Disasm.h"
#include "workload/Gen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace e9;

namespace {

bool objdumpAvailable() {
  return std::system("objdump --version >/dev/null 2>&1") == 0;
}

/// Disassembles \p Bytes with objdump and returns the instruction start
/// offsets it reports.
std::vector<uint64_t> objdumpBoundaries(const std::vector<uint8_t> &Bytes) {
  // Pid-qualified: ctest runs each test case as its own process, so a
  // fixed name races when the suite runs under `ctest -j`.
  std::string Tag = std::to_string(static_cast<long>(::getpid()));
  std::string Bin = ::testing::TempDir() + "/objdiff." + Tag + ".bin";
  std::string Txt = ::testing::TempDir() + "/objdiff." + Tag + ".txt";
  {
    std::ofstream Out(Bin, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
  }
  std::string Cmd = "objdump -D -w -b binary -m i386:x86-64 " + Bin + " > " +
                    Txt + " 2>/dev/null";
  if (std::system(Cmd.c_str()) != 0)
    return {};

  std::vector<uint64_t> Offsets;
  std::ifstream In(Txt);
  std::string Line;
  while (std::getline(In, Line)) {
    // Instruction lines look like "   2b:\t48 89 03\tmov ...".
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos || Colon == 0)
      continue;
    size_t Start = Line.find_first_not_of(' ');
    if (Start >= Colon)
      continue;
    std::string Hex = Line.substr(Start, Colon - Start);
    if (Hex.find_first_not_of("0123456789abcdef") != std::string::npos)
      continue;
    // Require a mnemonic field (continuation-free thanks to -w).
    if (Line.find('\t', Colon) == std::string::npos)
      continue;
    Offsets.push_back(std::strtoull(Hex.c_str(), nullptr, 16));
  }
  return Offsets;
}

} // namespace

class ObjdumpDiff : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObjdumpDiff, BoundariesAgreeOnGeneratedCode) {
  if (!objdumpAvailable())
    GTEST_SKIP() << "objdump not installed";

  workload::WorkloadConfig C;
  C.Seed = GetParam();
  C.NumFuncs = 10;
  workload::Workload W = workload::generateWorkload(C);
  const std::vector<uint8_t> &Text = W.Image.textSegment()->Bytes;

  frontend::DisasmResult D = frontend::linearDisassemble(W.Image);
  ASSERT_EQ(D.UndecodableBytes, 0u);
  std::vector<uint64_t> Ours;
  for (const x86::Insn &I : D.Insns)
    Ours.push_back(I.Address - W.TextBase);

  std::vector<uint64_t> Theirs = objdumpBoundaries(Text);
  ASSERT_FALSE(Theirs.empty()) << "objdump produced no output";
  ASSERT_EQ(Ours.size(), Theirs.size());
  for (size_t I = 0; I != Ours.size(); ++I)
    ASSERT_EQ(Ours[I], Theirs[I]) << "divergence at instruction " << I;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjdumpDiff,
                         ::testing::Values(1001, 1002, 1003, 1004));

// The punned/padded output of the rewriter must also re-disassemble with
// boundaries objdump agrees on, starting from any patched site.
TEST(ObjdumpDiff, PaddedJumpLengthsAgree) {
  if (!objdumpAvailable())
    GTEST_SKIP() << "objdump not installed";
  // Padded punned jump encodings with 0-3 pads, exactly as the rewriter
  // emits them (legacy segment-override prefixes only).
  std::vector<uint8_t> Bytes = {
      0xe9, 0x11, 0x22, 0x33, 0x44,                   // plain
      0x26, 0xe9, 0x11, 0x22, 0x33, 0x44,             // es pad
      0x26, 0x2e, 0xe9, 0x11, 0x22, 0x33, 0x44,       // es cs pads
      0x26, 0x2e, 0x36, 0xe9, 0x11, 0x22, 0x33, 0x44, // 3 pads
      0xc3,
  };
  elf::Image Img;
  Img.Entry = 0;
  elf::Segment Text;
  Text.VAddr = 0x1000;
  Text.Bytes = Bytes;
  Text.MemSize = Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Img.Segments.push_back(std::move(Text));

  frontend::DisasmResult D = frontend::linearDisassemble(Img);
  std::vector<uint64_t> Ours;
  for (const x86::Insn &I : D.Insns)
    Ours.push_back(I.Address - 0x1000);
  std::vector<uint64_t> Theirs = objdumpBoundaries(Bytes);
  ASSERT_EQ(Ours.size(), Theirs.size());
  for (size_t I = 0; I != Ours.size(); ++I)
    EXPECT_EQ(Ours[I], Theirs[I]);
}

// Randomized assembler streams (all instruction families the assembler
// can emit, including string/atomic/loop/divide ops and padded jumps):
// our boundaries must agree with objdump exactly.
#include "support/Rng.h"
#include "x86/Assembler.h"

namespace {

std::vector<uint8_t> randomStream(uint64_t Seed) {
  using namespace e9::x86;
  Rng R(Seed);
  Assembler A(0x1000);
  static const Reg Regs[] = {Reg::RAX, Reg::RCX, Reg::RDX, Reg::RBX,
                             Reg::RSI, Reg::RDI, Reg::R8,  Reg::R12,
                             Reg::R13, Reg::R15};
  auto Pick = [&] { return Regs[R.below(std::size(Regs))]; };
  auto PickMem = [&] {
    switch (R.below(4)) {
    case 0:
      return Mem::base(Pick(), static_cast<int32_t>(R.range(-300, 300)));
    case 1: {
      Reg Index;
      do
        Index = Pick();
      while (Index == Reg::RSP);
      return Mem::baseIndex(Pick(), Index,
                            static_cast<uint8_t>(1u << R.below(4)), 16);
    }
    case 2:
      return Mem::ripRel(static_cast<int32_t>(R.range(-4096, 4096)));
    default:
      return Mem::abs(static_cast<int32_t>(R.below(0x100000)));
    }
  };
  const OpSize Sizes[] = {OpSize::B8, OpSize::B16, OpSize::B32,
                          OpSize::B64};
  for (int I = 0; I != 150; ++I) {
    OpSize S = Sizes[R.below(4)];
    switch (R.below(16)) {
    case 0:
      A.movMemReg(S, PickMem(), Pick());
      break;
    case 1:
      A.movRegMem(S, Pick(), PickMem());
      break;
    case 2:
      A.aluMemImm(S, static_cast<Alu>(R.below(8)), PickMem(),
                  static_cast<int32_t>(R.range(-100000, 100000)));
      break;
    case 3:
      A.leaRegMem(Pick(), PickMem());
      break;
    case 4:
      A.movRegImm64(Pick(), R.next());
      break;
    case 5:
      A.pushReg(Pick());
      A.popReg(Pick());
      break;
    case 6: { // padded punned jump, 0-3 pads
      unsigned Pads = static_cast<unsigned>(R.below(4));
      static const uint8_t PadBytes[] = {0x26, 0x2e, 0x36, 0x3e};
      for (unsigned P = 0; P != Pads; ++P)
        A.byte(PadBytes[P]);
      A.byte(0xe9);
      A.raw({static_cast<uint8_t>(R.next()),
             static_cast<uint8_t>(R.next()), 0x01, 0x00});
      break;
    }
    case 7:
      A.repMovsb();
      break;
    case 8:
      A.repStosq();
      break;
    case 9:
      if (R.chance(50))
        A.lockPrefix();
      A.xaddMemReg(S == OpSize::B8 ? OpSize::B32 : S, PickMem(), Pick());
      break;
    case 10:
      A.cmpxchgMemReg(S, PickMem(), Pick());
      break;
    case 11: {
      auto L = A.createLabel();
      A.bind(L);
      A.nop();
      if (R.chance(50))
        A.loopLabel(L);
      else
        A.jrcxzLabel(L);
      break;
    }
    case 12:
      A.divReg(Pick());
      break;
    case 13:
      A.cqo();
      A.idivReg(Pick());
      break;
    case 14:
      A.movzxRegMem8(Pick(), PickMem());
      break;
    default:
      A.shiftRegImm(S, Shift::Shr, Pick(),
                    static_cast<uint8_t>(R.below(32)));
      break;
    }
  }
  A.ret();
  EXPECT_TRUE(A.resolveAll());
  return A.take();
}

} // namespace

class ObjdumpDiffRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObjdumpDiffRandom, AssemblerStreamsAgree) {
  if (!objdumpAvailable())
    GTEST_SKIP() << "objdump not installed";

  std::vector<uint8_t> Bytes = randomStream(GetParam());
  elf::Image Img;
  Img.Entry = 0x1000;
  elf::Segment Text;
  Text.VAddr = 0x1000;
  Text.Bytes = Bytes;
  Text.MemSize = Bytes.size();
  Text.Flags = elf::PF_R | elf::PF_X;
  Img.Segments.push_back(std::move(Text));

  frontend::DisasmResult D = frontend::linearDisassemble(Img);
  ASSERT_EQ(D.UndecodableBytes, 0u);
  std::vector<uint64_t> Ours;
  for (const x86::Insn &I : D.Insns)
    Ours.push_back(I.Address - 0x1000);
  std::vector<uint64_t> Theirs = objdumpBoundaries(Bytes);
  ASSERT_EQ(Ours.size(), Theirs.size());
  for (size_t I = 0; I != Ours.size(); ++I)
    ASSERT_EQ(Ours[I], Theirs[I]) << "instruction " << I;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjdumpDiffRandom,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));
