//===- bench/Common.cpp ---------------------------------------*- C++ -*-===//

#include "Common.h"

#include "frontend/Prescan.h"
#include "lowfat/LowFat.h"
#include "vm/Hooks.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace e9;
using namespace e9::bench;
using namespace e9::frontend;
using namespace e9::workload;

uint64_t bench::peakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(RU.ru_maxrss) / 1024; // bytes on macOS
#else
  return static_cast<uint64_t>(RU.ru_maxrss); // KiB on Linux
#endif
#else
  return 0;
#endif
}

AppResult bench::evalEntry(const SuiteEntry &Entry, App Application,
                           const EvalOptions &Opts) {
  AppResult R;
  R.Name = Entry.Config.Name;

  Workload W = generateWorkload(Entry.Config);

  std::vector<uint64_t> Locs =
      prescanSelect(W.Image, Application == App::Jumps
                                 ? SelectorKind::Jumps
                                 : SelectorKind::HeapWrites);
  R.NLoc = Locs.size();

  RewriteOptions RO;
  if (Opts.UseLowFat) {
    RO.Patch.Spec.Kind = core::TrampolineKind::LowFatCheck;
    RO.Patch.Spec.HookAddr = vm::HookLowFatCheck;
  } else {
    RO.Patch.Spec.Kind = core::TrampolineKind::Empty;
  }
  RO.Patch.EnableT1 = Opts.EnableT1;
  RO.Patch.EnableT2 = Opts.EnableT2;
  RO.Patch.EnableT3 = Opts.EnableT3;
  RO.Patch.ForceB0 = Opts.ForceB0;
  RO.Grouping.Enabled = Opts.GroupingEnabled;
  RO.Grouping.M = Opts.GroupingM;
  RO.ExtraReserved.push_back(lowfat::heapReservation());
  if (Entry.SharedObject) {
    // Dynamic-linker neighbors occupy the 2 GiB below a shared object's
    // load address (paper §5.1): negative offsets are unusable.
    RO.ExtraReserved.push_back(
        Interval{W.TextBase - (1ull << 31), W.TextBase});
  }

  auto Out = rewrite(W.Image, Locs, RO);
  if (!Out.isOk()) {
    R.Error = Out.reason();
    return R;
  }
  R.BinKB = static_cast<double>(Out->OrigFileSize) / 1024.0;
  R.BasePct = Out->Stats.basePct();
  R.T1Pct = Out->Stats.pct(core::Tactic::T1);
  R.T2Pct = Out->Stats.pct(core::Tactic::T2);
  R.T3Pct = Out->Stats.pct(core::Tactic::T3);
  R.SuccPct = Out->Stats.succPct();
  R.SizePct = Out->sizePct();
  R.PhysBytes = Out->Grouping.PhysBytes;
  R.Mappings = Out->Grouping.MappingCount;
  R.Metrics = Out->Metrics;

  if (!Opts.MeasureTime) {
    R.SemanticsOk = true;
    return R;
  }

  RunConfig RC;
  RC.UseLowFat = Opts.UseLowFat;
  RunOutcome Ref = runImage(W.Image, RC);
  RunConfig RCP = RC;
  RCP.B0Table = Out->B0Table;
  RunOutcome Got = runImage(Out->Rewritten, RCP);
  if (!Ref.ok() || !Got.ok()) {
    R.Error = Ref.ok() ? Got.Result.Error : Ref.Result.Error;
    return R;
  }
  R.SemanticsOk =
      Ref.Rax == Got.Rax && Ref.DataChecksum == Got.DataChecksum;
  if (!R.SemanticsOk)
    R.Error = "observable state diverged";
  R.TimePct = Ref.Result.Cost == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(Got.Result.Cost) /
                        static_cast<double>(Ref.Result.Cost);
  return R;
}

void bench::printTableHeader(const char *Title, bool WithTime) {
  std::printf("\n%s\n", Title);
  std::printf("%-12s %8s %7s %7s %6s %6s %6s %7s", "binary", "KB", "#Loc",
              "Base%", "T1%", "T2%", "T3%", "Succ%");
  if (WithTime)
    std::printf(" %8s", "Time%");
  std::printf(" %8s %6s\n", "Size%", "ok");
  std::printf("%.*s\n", WithTime ? 92 : 83,
              "--------------------------------------------------------"
              "--------------------------------------------------------");
}

void bench::printTableRow(const AppResult &R, bool WithTime) {
  if (!R.Error.empty() && !R.SemanticsOk && R.NLoc == 0) {
    std::printf("%-12s  ERROR: %s\n", R.Name.c_str(), R.Error.c_str());
    return;
  }
  std::printf("%-12s %8.1f %7zu %7.2f %6.2f %6.2f %6.2f %7.2f",
              R.Name.c_str(), R.BinKB, R.NLoc, R.BasePct, R.T1Pct, R.T2Pct,
              R.T3Pct, R.SuccPct);
  if (WithTime)
    std::printf(" %8.2f", R.TimePct);
  std::printf(" %8.2f %6s\n", R.SizePct,
              R.SemanticsOk ? "yes" : R.Error.c_str());
}

void bench::printTableTotals(const std::vector<AppResult> &Rows,
                             bool WithTime) {
  AppResult T;
  T.Name = "#Total/Avg%";
  size_t N = 0;
  for (const AppResult &R : Rows) {
    if (!R.Error.empty() && R.NLoc == 0)
      continue;
    ++N;
    T.NLoc += R.NLoc;
    T.BinKB += R.BinKB;
    T.BasePct += R.BasePct;
    T.T1Pct += R.T1Pct;
    T.T2Pct += R.T2Pct;
    T.T3Pct += R.T3Pct;
    T.SuccPct += R.SuccPct;
    T.TimePct += R.TimePct;
    T.SizePct += R.SizePct;
  }
  if (N == 0)
    return;
  T.BasePct /= N;
  T.T1Pct /= N;
  T.T2Pct /= N;
  T.T3Pct /= N;
  T.SuccPct /= N;
  T.TimePct /= N;
  T.SizePct /= N;
  T.SemanticsOk = true;
  printTableRow(T, WithTime);
}
